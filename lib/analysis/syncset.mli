(** Static sync schedules: which shared globals the monitor must copy at
    each operation switch.

    Folded from the {!Dataflow} may-read/may-write and exposed-read
    (kill) analyses over the partition.  Per operation: an RO set
    (slots it reads but provably never writes — the relocation table
    points straight at the master, no copies at all), a FILL set (the
    slots whose shadow must be fresh at entry: relevant minus RO minus
    killed), an OUT set (may-written slots some other operation can
    observe — unobservable writes are never published), and an ENTER
    set (fill ∩ union of other operations' OUT).  Per (src, dst) pair
    a RESUME set restricts that union to OUT sets of operations
    reachable from the exiting operation; the resume domain ignores
    kills, which only license fresh entries.  Escaped globals (address
    stored to a peripheral) stay in every set where a slot exists;
    sanitized globals are pinned into fill and out; programs with raw
    SVCs (thread yields) use conservative resume scheduling (resume =
    enter, kills disabled). *)

module SS : Set.S with type elt = string and type t = Set.Make(String).t

(** The slice of an operation the analysis needs, kept abstract so this
    module does not depend on the partitioning layer. *)
type op_view = {
  ov_name : string;
  ov_entry : string;
  ov_funcs : SS.t;   (** member functions, icall targets included *)
  ov_slots : SS.t;   (** shadowed (external) globals the op may access *)
  ov_killed : SS.t;  (** slots provably overwritten before any read
                         ({!Dataflow.killed_of} on [ov_entry]) *)
}

type t

val compute :
  ops:op_view list ->
  callgraph:Callgraph.t ->
  rw:Dataflow.t ->
  escaped:SS.t ->
  sanitized:SS.t ->
  ptr_vars:SS.t ->
  has_irq:bool ->
  conservative_resume:bool ->
  t

(** Operation names, in partition order. *)
val ops : t -> string list

(** An operation's shadow-slot domain, as given at construction. *)
val slots_of : t -> string -> SS.t

(** Raw may-read/may-write sets over all globals (not just slots). *)
val may_read : t -> string -> SS.t

val may_write : t -> string -> SS.t

(** Slots to write back at a sync-out of the operation. *)
val out_set : t -> string -> SS.t

(** Slots to refill when entering the operation fresh. *)
val enter_set : t -> string -> SS.t

(** Slots to refill when [dst] resumes after [src] exits.  Falls back to
    the conservative per-destination set for unknown pairs and under
    conservative scheduling. *)
val resume_set : t -> src:string -> dst:string -> SS.t

(** Slots the operation can observe at all (may-read ∪ may-write ∪
    escaped, restricted to its slots). *)
val relevant_set : t -> string -> SS.t

(** Slots mapped read-only onto the master: read but provably never
    written, not escaped, not sanitized, no pointer fields.  Disjoint
    from every copy schedule. *)
val ro_set : t -> string -> SS.t

(** Slots whose shadow must be fresh when the operation starts:
    relevant minus RO minus killed, plus escaped and sanitized
    slots. *)
val fill_set : t -> string -> SS.t

(** May-written slots of the operation that no other operation can
    observe: excluded from its OUT set (dead publish). *)
val unobserved_set : t -> string -> SS.t

(** Union of all operations' unobserved sets: globals whose master is
    never refreshed, which external checkers must not compare against a
    baseline's final memory. *)
val unobserved : t -> SS.t

(** Globals with no static write bound (see
    {!Dataflow.escaped_globals}). *)
val escaped : t -> SS.t

(** Whether resume scheduling fell back to the enter sets. *)
val conservative_resume : t -> bool

(** (src, dst) pairs carrying an explicit resume schedule; empty under
    conservative scheduling. *)
val pairs : t -> (string * string) list
