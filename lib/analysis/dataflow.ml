(* Interprocedural may-read/may-write dataflow.

   The resource analysis (resource.ml) computes one combined access set
   per function — enough for MPU policy, too coarse for scheduling
   synchronization.  This pass re-walks the same instructions over the
   same points-to solution but keeps the direction of every access:
   which globals a function may LOAD from and which it may STORE to,
   including stores through address-taken pointers, [memcpy]-style
   propagation, and (once folded over an operation's member set, which
   already includes resolved icall targets) indirect calls.

   The lattice is the flow-insensitive powerset of global names ordered
   by inclusion; each function's sets are the join over its access
   sites, and an operation's sets are the join over its members.  Both
   are over-approximations of the dynamic access sets — the property
   the static sync schedules (syncset.ml) depend on. *)

open Opec_ir
module SS = Set.Make (String)

type func_rw = {
  reads : SS.t;   (** globals the function may load from *)
  writes : SS.t;  (** globals the function may store to *)
}

let empty = { reads = SS.empty; writes = SS.empty }

let union a b =
  { reads = SS.union a.reads b.reads; writes = SS.union a.writes b.writes }

type t = (string, func_rw) Hashtbl.t

(* Globals an address expression in [func] may target: named directly,
   or through any pointer the points-to analysis says it may hold. *)
let addr_globals (p : Program.t) pts ~func acc (e : Expr.t) =
  List.fold_left
    (fun acc root ->
      match root with
      | `Obj o -> (
        match Node.as_global o with Some g -> SS.add g acc | None -> acc)
      | `Var v ->
        Node.Set.fold
          (fun o acc ->
            match Node.as_global o with Some g -> SS.add g acc | None -> acc)
          (Points_to.find_pts pts v)
          acc)
    acc
    (Points_to.roots p.peripherals ~func e)

let analyze_function (p : Program.t) pts (f : Func.t) =
  let func = f.name in
  let reads = ref SS.empty and writes = ref SS.empty in
  Instr.iter_block
    (fun instr ->
      match instr with
      | Instr.Load (_, _, a) -> reads := addr_globals p pts ~func !reads a
      | Instr.Store (_, a, _) -> writes := addr_globals p pts ~func !writes a
      | Instr.Memcpy (d, s, _) ->
        writes := addr_globals p pts ~func !writes d;
        reads := addr_globals p pts ~func !reads s
      | Instr.Memset (d, _, _) -> writes := addr_globals p pts ~func !writes d
      | Instr.Let _ | Instr.Alloca _ | Instr.Call _ | Instr.If _
      | Instr.While _ | Instr.Return _ | Instr.Svc _ | Instr.Halt
      | Instr.Nop -> ())
    f.body;
  { reads = !reads; writes = !writes }

let analyze (p : Program.t) pts : t =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (f : Func.t) -> Hashtbl.replace tbl f.name (analyze_function p pts f))
    p.funcs;
  tbl

let of_func (t : t) name = Option.value (Hashtbl.find_opt t name) ~default:empty

let of_funcs (t : t) names =
  SS.fold (fun f acc -> union acc (of_func t f)) names empty

(* Globals whose address escaped into a peripheral window: the program
   stored a pointer to them into an MMIO register, so a DMA-style device
   may read or write them at any moment — no static bound on the writers
   exists.  The sync schedules treat them fully conservatively and lint
   L010 reports each one. *)
let escaped_globals (p : Program.t) pts =
  List.fold_left
    (fun acc (pe : Peripheral.t) ->
      Node.Set.fold
        (fun o acc ->
          match Node.as_global o with Some g -> SS.add g acc | None -> acc)
        (Points_to.find_pts pts (Node.periph pe.name))
        acc)
    SS.empty p.peripherals

(* Does the program contain a raw SVC?  Cooperative-thread yields do, and
   they allow context switches at points the operation-call relation
   cannot see; syncset falls back to conservative resume sets then. *)
let has_svc (p : Program.t) =
  List.exists
    (fun (f : Func.t) ->
      let found = ref false in
      Instr.iter_block
        (fun i -> match i with Instr.Svc _ -> found := true | _ -> ())
        f.body;
      !found)
    p.funcs

(* Does the program declare an interrupt handler?  An IRQ-entered
   operation can preempt any other mid-activation, which widens the set
   of switch points exactly like a cooperative yield does. *)
let has_irq (p : Program.t) =
  List.exists (fun (f : Func.t) -> f.Func.irq) p.funcs

(* ------------------------------------------------------------------ *)
(* Exposed-read (kill) analysis.

   The may-read/may-write sets above bound WHAT an operation touches;
   they say nothing about ORDER.  Many embedded buffers are scratch: the
   operation fully overwrites them before its first read (a disk sector
   window, a staging buffer refilled from a device), so the value the
   buffer held when the operation was entered is dead — refilling the
   shadow from the master at entry moves bytes nobody will look at.
   This pass proves such kills with a per-variable three-point lattice
   walked flow-sensitively through the operation's code:

       Killed(0)  <  Unseen(1)  <  NeedsFill(2)

   Unseen is the entry state; the join of two control-flow paths is the
   maximum.  A proven whole-variable overwrite moves Unseen to Killed; a
   read — or a write not proven to cover the variable — moves Unseen to
   NeedsFill.  Both extremes absorb: once the entry value is dead it
   stays dead (later reads see the operation's own data), and once it
   may have been observed no later overwrite un-observes it.  A variable
   that finishes the walk Killed never exposes its entry value, so the
   monitor can skip its entry refill — and, when no other operation
   observes it either, the publish too.

   Whole-variable overwrites are recognized in three syntactic forms:
   - a store at offset 0 whose width covers the variable;
   - [Memcpy]/[Memset] with a constant byte count covering it;
   - the canonical [Build.for_] fill loop — a constant-trip-count
     counting loop whose only accesses to the variable are stores at
     [base + i*s] of width [s] with [trips * s] covering it (the
     BSP_SD_ReadBlock / driver-refill shape).

   Everything subtler degrades toward NeedsFill, never toward Killed:
   address-taken variables are never killed (an unseen alias could read
   them), unresolvable indirect calls and recursion join the callee's
   whole may-access set as reads, and a call that crosses into another
   operation's entry is treated as opaque (its effects land in that
   operation's shadows, and the resume schedule — which deliberately
   ignores kills — refreshes whatever it published).  The dynamic side
   of lint L011 replays a traced run against the resulting schedule, so
   an unsound kill would surface as a stale read there. *)

(* abstract state of one variable: 0 = killed, 1 = unseen, 2 = needs-fill *)
let st_killed = 0
and st_unseen = 1
and st_needs = 2

(* Abstract value of a local during the walk. *)
type aval =
  | AGlob of string * int64 option  (** &g + known or unknown offset *)
  | AFuncs of SS.t                  (** one of these functions' addresses *)
  | ATop

let aval_eq a b =
  match (a, b) with
  | AGlob (g, o), AGlob (g', o') ->
    String.equal g g' && Option.equal Int64.equal o o'
  | AFuncs s, AFuncs s' -> SS.equal s s'
  | ATop, ATop -> true
  | (AGlob _ | AFuncs _ | ATop), _ -> false

let rec contains_global = function
  | Expr.Global_addr _ -> true
  | Expr.Const _ | Expr.Local _ | Expr.Func_addr _ -> false
  | Expr.Bin (_, a, b) -> contains_global a || contains_global b
  | Expr.Un (_, a) -> contains_global a

let rec globals_in acc = function
  | Expr.Global_addr g -> SS.add g acc
  | Expr.Const _ | Expr.Local _ | Expr.Func_addr _ -> acc
  | Expr.Bin (_, a, b) -> globals_in (globals_in acc a) b
  | Expr.Un (_, a) -> globals_in acc a

(* [&g + k] for a syntactically constant offset [k]. *)
let rec global_offset (e : Expr.t) =
  match e with
  | Expr.Global_addr g -> Some (g, 0L)
  | Expr.Bin (Expr.Add, a, b) -> (
    match (global_offset a, Expr.const_fold b) with
    | Some (g, o), Some k -> Some (g, Int64.add o k)
    | _ -> (
      match (Expr.const_fold a, global_offset b) with
      | Some k, Some (g, o) -> Some (g, Int64.add o k)
      | _ -> None))
  | Expr.Bin (Expr.Sub, a, b) -> (
    match (global_offset a, Expr.const_fold b) with
    | Some (g, o), Some k -> Some (g, Int64.sub o k)
    | _ -> None)
  | _ -> None

type exposure = {
  ex_p : Program.t;
  ex_pts : Points_to.t;
  ex_rw : t;
  ex_cg : Callgraph.t;
  ex_sizes : (string, int) Hashtbl.t;
  ex_taken : SS.t;
  (* function-pointer tables: validated global -> (offset -> targets) *)
  ex_tables : (string * int64, SS.t) Hashtbl.t;
  ex_table_ok : SS.t;
  ex_op_entries : SS.t;
  ex_memo : (string, SS.t) Hashtbl.t;
}

(* Globals whose address can flow somewhere the walker cannot follow:
   bound to a local, stored as a value, compared, returned, passed to an
   undefined function, or passed through an unresolvable indirect call.
   Direct-call and resolved-icall arguments are exempt — the walker
   descends into those callees with the argument bound to the parameter.
   An address used purely as a load/store/memcpy target is an access,
   not a taking. *)
let address_taken_globals (p : Program.t) pts =
  let acc = ref SS.empty in
  let take e = acc := globals_in !acc e in
  let defined f = Program.find_func p f <> None in
  let resolved_targets ~func (e : Expr.t) =
    match e with
    | Expr.Local x ->
      let ts =
        Node.Set.fold
          (fun o acc ->
            match Node.as_func o with Some f -> f :: acc | None -> acc)
          (Points_to.points_to pts ~func ~local:x)
          []
      in
      if ts <> [] && List.for_all defined ts then Some ts else None
    | _ -> None
  in
  List.iter
    (fun (f : Func.t) ->
      let func = f.name in
      Instr.iter_block
        (fun instr ->
          match instr with
          | Instr.Let (_, e) -> take e
          | Instr.Load (_, _, _) -> ()
          | Instr.Store (_, _, v) -> take v
          | Instr.Alloca _ -> ()
          | Instr.Call (_, Instr.Direct g, args) ->
            if not (defined g) then List.iter take args
          | Instr.Call (_, Instr.Indirect e, args) ->
            take e;
            if resolved_targets ~func e = None then List.iter take args
          | Instr.If (c, _, _) | Instr.While (c, _) -> take c
          | Instr.Return (Some e) -> take e
          | Instr.Memcpy (_, _, n) -> take n
          | Instr.Memset (_, v, n) -> take v; take n
          | Instr.Return None | Instr.Svc _ | Instr.Halt | Instr.Nop -> ())
        f.body)
    p.funcs;
  !acc

(* Function-pointer dispatch tables: a global is a valid table when its
   address never escapes at all (not even as a call argument), every
   store into it lands a function address at a constant offset, and no
   memcpy/memset touches it.  Loads from a valid table resolve to the
   stored slot's targets — offset-sensitive, unlike the Andersen
   solution, which is what lets the walker follow [disk_ops]-style
   dispatch into the per-slot callee. *)
let funcptr_tables (p : Program.t) ~taken =
  let tables = Hashtbl.create 8 in
  let poisoned = ref SS.empty in
  let candidates = ref SS.empty in
  let poison_expr e = poisoned := globals_in !poisoned e in
  List.iter
    (fun (f : Func.t) ->
      Instr.iter_block
        (fun instr ->
          match instr with
          | Instr.Store (_, a, v) -> (
            match global_offset a with
            | Some (g, off) -> (
              match v with
              | Expr.Func_addr fn ->
                candidates := SS.add g !candidates;
                let key = (g, off) in
                let prev =
                  Option.value (Hashtbl.find_opt tables key) ~default:SS.empty
                in
                Hashtbl.replace tables key (SS.add fn prev)
              | _ -> poisoned := SS.add g !poisoned)
            | None -> poison_expr a)
          | Instr.Memcpy (d, _, _) -> poison_expr d
          | Instr.Memset (d, _, _) -> poison_expr d
          | Instr.Call (_, _, args) -> List.iter poison_expr args
          | _ -> ())
        f.body)
    p.funcs;
  let ok = SS.diff (SS.diff !candidates !poisoned) taken in
  (tables, ok)

let exposure (p : Program.t) pts (rw : t) (cg : Callgraph.t)
    ~(op_entries : SS.t) : exposure =
  let sizes = Hashtbl.create 64 in
  List.iter
    (fun (g : Global.t) -> Hashtbl.replace sizes g.name (Global.size g))
    p.globals;
  let taken = address_taken_globals p pts in
  let tables, table_ok = funcptr_tables p ~taken in
  { ex_p = p; ex_pts = pts; ex_rw = rw; ex_cg = cg; ex_sizes = sizes;
    ex_taken = taken; ex_tables = tables; ex_table_ok = table_ok;
    ex_op_entries = op_entries; ex_memo = Hashtbl.create 8 }

(* --- the interprocedural walk --- *)

let get_state st g = Option.value (Hashtbl.find_opt st g) ~default:st_unseen
let set_state st g v = Hashtbl.replace st g v

(* dst := pointwise maximum over [sts] (a key absent from one table reads
   as Unseen there, so a branch that killed a variable joins with an
   untouched branch back to Unseen — never down to Killed). *)
let join_all dst sts =
  let keys =
    List.fold_left
      (fun acc t -> Hashtbl.fold (fun g _ acc -> SS.add g acc) t acc)
      SS.empty sts
  in
  Hashtbl.reset dst;
  SS.iter
    (fun g ->
      set_state dst g
        (List.fold_left (fun m t -> max m (get_state t g)) st_killed sts))
    keys

let states_equal a b =
  let sub x y =
    Hashtbl.fold (fun g v acc -> acc && get_state y g = v) x true
  in
  sub a b && sub b a

let mark_exposed ex st g =
  if Hashtbl.mem ex.ex_sizes g && get_state st g <> st_killed then
    set_state st g st_needs

let trackable ex g =
  Hashtbl.mem ex.ex_sizes g && not (SS.mem g ex.ex_taken)

let mark_kill ex st g =
  if trackable ex g && get_state st g = st_unseen then set_state st g st_killed

let table_load ex g off =
  if not (SS.mem g ex.ex_table_ok) then None
  else
    let specific =
      Option.bind off (fun o -> Hashtbl.find_opt ex.ex_tables (g, o))
    in
    match specific with
    | Some ts -> Some ts
    | None ->
      (* unknown or unpopulated offset: any slot of this table *)
      Some
        (Hashtbl.fold
           (fun (g', _) ts acc ->
             if String.equal g' g then SS.union acc ts else acc)
           ex.ex_tables SS.empty)

let rec aeval ex env (e : Expr.t) : aval =
  match e with
  | Expr.Global_addr g -> AGlob (g, Some 0L)
  | Expr.Func_addr f -> AFuncs (SS.singleton f)
  | Expr.Const _ -> ATop
  | Expr.Local x -> Option.value (Hashtbl.find_opt env x) ~default:ATop
  | Expr.Bin (((Expr.Add | Expr.Sub) as op), a, b) -> (
    let shift g o k =
      match (o, k) with
      | Some o, Some k ->
        AGlob (g, Some (if op = Expr.Add then Int64.add o k else Int64.sub o k))
      | _ -> AGlob (g, None)
    in
    match aeval ex env a with
    | AGlob (g, o) when not (contains_global b) ->
      shift g o (Expr.const_fold b)
    | _ -> (
      match aeval ex env b with
      | AGlob (g, o) when op = Expr.Add && not (contains_global a) ->
        shift g o (Expr.const_fold a)
      | _ -> ATop))
  | Expr.Bin _ | Expr.Un _ -> ATop

(* locals assigned anywhere in a block (loop-carried state poisoning) *)
let assigned_locals block =
  Instr.fold_block
    (fun acc i ->
      match i with
      | Instr.Let (x, _) | Instr.Load (x, _, _) | Instr.Alloca (x, _)
      | Instr.Call (Some x, _, _) -> SS.add x acc
      | _ -> acc)
    SS.empty block

(* Recognize the [Build.for_] whole-variable fill: counting loop
   [i = 0; while (i < N) { ...; i = i + 1 }] whose only accesses to a
   candidate variable are affine stores [base + i*s] (or [base + i] for
   byte stores) of width [s], covering [N*s >= size].  Loads targeting
   other memory (a peripheral FIFO) are fine; any branch, nested loop,
   call or early exit in the body rejects the candidacy outright. *)
let loop_fill_kills ex ~func env ~ix ~trips body =
  let flat_ok =
    List.for_all
      (fun i ->
        match i with
        | Instr.Let _ | Instr.Load _ | Instr.Store _ -> true
        | _ -> false)
      body
  in
  let increment_last =
    match List.rev body with
    | Instr.Let (x, Expr.Bin (Expr.Add, Expr.Local x', Expr.Const 1L)) :: _ ->
      String.equal x ix && String.equal x' ix
    | _ -> false
  in
  let ix_writes =
    List.length
      (List.filter
         (fun i ->
           match i with
           | Instr.Let (x, _) | Instr.Load (x, _, _) -> String.equal x ix
           | _ -> false)
         body)
  in
  if not (flat_ok && increment_last && ix_writes = 1 && trips >= 1L) then []
  else begin
    let affine_base w (addr : Expr.t) =
      let s = Int64.of_int (Instr.width_bytes w) in
      match addr with
      | Expr.Bin (Expr.Add, base, Expr.Bin (Expr.Mul, Expr.Local i, Expr.Const k))
      | Expr.Bin (Expr.Add, base, Expr.Bin (Expr.Mul, Expr.Const k, Expr.Local i))
        when String.equal i ix && Int64.equal k s ->
        Some base
      | Expr.Bin (Expr.Add, base, Expr.Local i)
        when String.equal i ix && Int64.equal s 1L ->
        Some base
      | _ -> None
    in
    let candidates = ref [] in
    List.iter
      (fun instr ->
        match instr with
        | Instr.Store (w, addr, _) -> (
          match Option.map (aeval ex env) (affine_base w addr) with
          | Some (AGlob (g, Some 0L))
            when trackable ex g
                 && Int64.to_int trips * Instr.width_bytes w
                    >= Hashtbl.find ex.ex_sizes g ->
            if not (List.mem g !candidates) then candidates := g :: !candidates
          | _ -> ())
        | _ -> ())
      body;
    (* a candidate must not be read (or stored non-affinely) in the body *)
    List.filter
      (fun g ->
        List.for_all
          (fun instr ->
            match instr with
            | Instr.Load (_, _, a) -> (
              match aeval ex env a with
              | AGlob (g', _) -> not (String.equal g g')
              | _ ->
                (* unresolved address: reject if it may alias the
                   candidate through a pointer *)
                not
                  (SS.mem g
                     (addr_globals ex.ex_p ex.ex_pts ~func SS.empty a)))
            | Instr.Store (w, a, v) ->
              (not (contains_global v))
              &&
              (match Option.map (aeval ex env) (affine_base w a) with
              | Some (AGlob (g', Some 0L)) when String.equal g g' -> true
              | _ -> (
                match aeval ex env a with
                | AGlob (g', _) -> not (String.equal g g')
                | _ -> true))
            | _ -> true)
          body)
      !candidates
  end

let rec walk_block ex stack func env st block =
  match block with
  | [] -> ()
  | Instr.Let (ix, Expr.Const 0L)
    :: (Instr.While (Expr.Bin (Expr.Lt, Expr.Local ix', Expr.Const trips), _)
        as loop)
    :: rest
    when String.equal ix ix' ->
    let body = match loop with Instr.While (_, b) -> b | _ -> [] in
    let kills = loop_fill_kills ex ~func env ~ix ~trips body in
    let pre = List.map (fun g -> (g, get_state st g)) kills in
    walk_instr ex stack func env st (Instr.Let (ix, Expr.Const 0L));
    walk_instr ex stack func env st loop;
    (* the loop provably runs all [trips] iterations and its only accesses
       to each candidate are the covering stores: override the generic
       partial-store result when the entry value was still unexposed *)
    List.iter
      (fun (g, pre_state) ->
        if pre_state <> st_needs then set_state st g st_killed)
      pre;
    walk_block ex stack func env st rest
  | instr :: rest ->
    walk_instr ex stack func env st instr;
    (* code after a Return/Halt in the same block is unreachable *)
    (match instr with
    | Instr.Return _ | Instr.Halt -> ()
    | _ -> walk_block ex stack func env st rest)

and walk_instr ex stack func env st (instr : Instr.t) =
  let exposed_addr a =
    (* address the walker cannot pin to one global: fall back to the
       points-to roots, exposing each possible target *)
    SS.iter (mark_exposed ex st)
      (addr_globals ex.ex_p ex.ex_pts ~func SS.empty a)
  in
  match instr with
  | Instr.Let (x, e) -> Hashtbl.replace env x (aeval ex env e)
  | Instr.Alloca (x, _) -> Hashtbl.replace env x ATop
  | Instr.Load (x, _, a) ->
    (match aeval ex env a with
    | AGlob (g, off) ->
      mark_exposed ex st g;
      Hashtbl.replace env x
        (match table_load ex g off with
        | Some ts -> AFuncs ts
        | None -> ATop)
    | AFuncs _ | ATop ->
      exposed_addr a;
      Hashtbl.replace env x ATop)
  | Instr.Store (w, a, _) -> (
    match aeval ex env a with
    | AGlob (g, Some 0L)
      when trackable ex g
           && Instr.width_bytes w >= Hashtbl.find ex.ex_sizes g ->
      mark_kill ex st g
    | AGlob (g, _) -> mark_exposed ex st g
    | AFuncs _ | ATop -> exposed_addr a)
  | Instr.Memcpy (d, s, n) ->
    (match aeval ex env s with
    | AGlob (g, _) -> mark_exposed ex st g
    | _ -> exposed_addr s);
    (match (aeval ex env d, Expr.const_fold n) with
    | AGlob (g, Some 0L), Some len
      when trackable ex g && Int64.to_int len >= Hashtbl.find ex.ex_sizes g ->
      mark_kill ex st g
    | AGlob (g, _), _ -> mark_exposed ex st g
    | _ -> exposed_addr d)
  | Instr.Memset (d, _, n) -> (
    match (aeval ex env d, Expr.const_fold n) with
    | AGlob (g, Some 0L), Some len
      when trackable ex g && Int64.to_int len >= Hashtbl.find ex.ex_sizes g ->
      mark_kill ex st g
    | AGlob (g, _), _ -> mark_exposed ex st g
    | _ -> exposed_addr d)
  | Instr.Call (dst, callee, args) ->
    let avals = List.map (aeval ex env) args in
    let targets =
      match callee with
      | Instr.Direct f -> Some [ f ]
      | Instr.Indirect e -> (
        match aeval ex env e with
        | AFuncs fs when not (SS.is_empty fs) -> Some (SS.elements fs)
        | _ -> (
          match e with
          | Expr.Local x ->
            let ts =
              Node.Set.fold
                (fun o acc ->
                  match Node.as_func o with Some f -> f :: acc | None -> acc)
                (Points_to.points_to ex.ex_pts ~func ~local:x)
                []
            in
            if ts = [] then None else Some ts
          | _ -> None))
    in
    (match targets with
    | None ->
      (* an indirect call to who-knows-where: any global may be read *)
      Hashtbl.iter (fun g _ -> mark_exposed ex st g) ex.ex_sizes
    | Some ts ->
      if List.length ts = 1 then
        do_call ex stack st (List.hd ts) avals
      else begin
        (* branch over the possible targets and join *)
        let outs =
          List.map
            (fun f ->
              let st' = Hashtbl.copy st in
              do_call ex stack st' f avals;
              st')
            ts
        in
        join_all st outs
      end);
    Option.iter (fun x -> Hashtbl.replace env x ATop) dst
  | Instr.If (_, a, b) ->
    let st1 = Hashtbl.copy st and env1 = Hashtbl.copy env in
    let st2 = Hashtbl.copy st and env2 = Hashtbl.copy env in
    walk_block ex stack func env1 st1 a;
    walk_block ex stack func env2 st2 b;
    join_all st [ st1; st2 ];
    merge_envs env env1 env2
  | Instr.While (_, body) ->
    (* poison loop-carried locals, then iterate to a fixpoint: each pass
       re-walks the body from a fresh copy of the poisoned environment,
       joining the resulting states (the max-join keeps the entry state
       for the zero-iteration path) *)
    SS.iter
      (fun x -> Hashtbl.replace env x ATop)
      (assigned_locals body);
    let env0 = Hashtbl.copy env in
    let rec fix () =
      let before = Hashtbl.copy st in
      let st' = Hashtbl.copy st in
      let env' = Hashtbl.copy env0 in
      walk_block ex stack func env' st' body;
      join_all st [ before; st' ];
      if not (states_equal before st) then fix ()
    in
    fix ()
  | Instr.Return _ | Instr.Svc _ | Instr.Halt | Instr.Nop -> ()

and merge_envs env env1 env2 =
  Hashtbl.reset env;
  Hashtbl.iter
    (fun x v ->
      match Hashtbl.find_opt env2 x with
      | Some v' when aval_eq v v' -> Hashtbl.replace env x v
      | _ -> ())
    env1

and do_call ex stack st f avals =
  if SS.mem f ex.ex_op_entries then begin
    (* crossing into another operation: its accesses go to its own
       shadows, and the (kill-free) resume schedule covers anything it
       publishes that this operation observes afterwards.  Arguments
       rooted at a global expose that global — the callee accesses it
       through the pointer under its own slot. *)
    List.iter
      (fun av ->
        match av with AGlob (g, _) -> mark_exposed ex st g | _ -> ())
      avals;
    (* re-entering this operation's own entry is the one switch the
       resume schedule does not cover (reach* excludes the destination
       itself), so everything the recursion may publish reads as exposed *)
    match List.rev stack with
    | entry :: _ when String.equal entry f ->
      let { reads; writes } =
        of_funcs ex.ex_rw (Callgraph.reachable ex.ex_cg f)
      in
      SS.iter (mark_exposed ex st) (SS.union reads writes)
    | _ -> ()
  end
  else if List.mem f stack then
    (* recursion: join the callee's whole reachable access set as reads *)
    let { reads; writes } = of_funcs ex.ex_rw (Callgraph.reachable ex.ex_cg f) in
    SS.iter (mark_exposed ex st) (SS.union reads writes)
  else
    match Program.find_func ex.ex_p f with
    | None ->
      List.iter
        (fun av ->
          match av with AGlob (g, _) -> mark_exposed ex st g | _ -> ())
        avals
    | Some fd ->
      let env = Hashtbl.create 8 in
      let rec bind params avs =
        match (params, avs) with
        | (x, _) :: ps, av :: avs ->
          Hashtbl.replace env x av;
          bind ps avs
        | (x, _) :: ps, [] ->
          Hashtbl.replace env x ATop;
          bind ps []
        | [], _ -> ()
      in
      bind fd.Func.params avals;
      walk_block ex (f :: stack) f env st fd.Func.body

(* The set of globals whose entry value the operation rooted at [entry]
   provably never observes (memoized per entry). *)
let killed_of ex ~entry =
  match Hashtbl.find_opt ex.ex_memo entry with
  | Some s -> s
  | None ->
    let killed =
      match Program.find_func ex.ex_p entry with
      | None -> SS.empty
      | Some fd ->
        let st = Hashtbl.create 16 in
        let env = Hashtbl.create 8 in
        List.iter (fun (x, _) -> Hashtbl.replace env x ATop) fd.Func.params;
        walk_block ex [ entry ] entry env st fd.Func.body;
        Hashtbl.fold
          (fun g v acc -> if v = st_killed then SS.add g acc else acc)
          st SS.empty
    in
    Hashtbl.replace ex.ex_memo entry killed;
    killed

(* Globals some type-level pointer field can inhabit: ineligible for
   read-only master mapping, because shadow fills localize pointer
   fields and a direct master read would skip that translation. *)
let pointer_vars (p : Program.t) =
  List.fold_left
    (fun acc (g : Global.t) ->
      if Global.pointer_field_offsets g <> [] then SS.add g.name acc else acc)
    SS.empty p.globals
