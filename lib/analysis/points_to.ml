(* Inclusion-based (Andersen-style) points-to analysis, the stand-in for
   SVF in the paper (Section 4.1).

   Field-insensitive and flow-insensitive, with an on-the-fly call graph:
   parameter/return copy edges for indirect calls are added as targets are
   discovered, iterating to a fixpoint.  The result is sound and
   over-approximate — the property the paper depends on ("the results of
   the point-to analysis are conservative and over-approximated").

   Constant MMIO addresses are modeled as peripheral objects, so datasheet
   identification of peripheral accesses (the paper's IR-level backward
   slicing) falls out of the same propagation: a HAL function receiving a
   handle struct whose field holds a peripheral base sees that peripheral
   in the points-to set of its address operand. *)

open Opec_ir

type constr =
  | Addr_of of Node.t * Node.t  (* lhs ⊇ {obj} *)
  | Copy of Node.t * Node.t     (* lhs ⊇ rhs *)
  | Load of Node.t * Node.t     (* lhs ⊇ pts(o) for o ∈ pts(rhs) *)
  | Store of Node.t * Node.t    (* pts(o) ⊇ pts(rhs) for o ∈ pts(lhs) *)

type icall_site = { ic_func : string; ic_index : int; ic_node : Node.t; ic_arity : int }

type t = {
  pts : (Node.t, Node.Set.t) Hashtbl.t;
  icalls : icall_site list;
  solve_time : float;
  iterations : int;
}

let find_pts t n = Option.value (Hashtbl.find_opt t.pts n) ~default:Node.Set.empty

(* --- constraint generation --------------------------------------------- *)

(* Value roots of an expression: the abstract values that may flow out of
   it.  Constants inside a peripheral window become peripheral objects. *)
let rec roots datasheet ~func (e : Expr.t) =
  match e with
  | Expr.Const n -> (
    match Peripheral.find datasheet (Int64.to_int n) with
    | Some p -> [ `Obj (Node.periph p.Peripheral.name) ]
    | None -> [])
  | Expr.Local x -> [ `Var (Node.local ~func ~name:x) ]
  | Expr.Global_addr g -> [ `Obj (Node.global g) ]
  | Expr.Func_addr f -> [ `Obj (Node.func f) ]
  | Expr.Un (_, a) -> roots datasheet ~func a
  | Expr.Bin (_, a, b) -> (
    (* constant-folding arithmetic keeps peripheral identification exact
       for base+offset forms *)
    match Expr.const_fold e with
    | Some n -> roots datasheet ~func (Expr.Const n)
    | None -> roots datasheet ~func a @ roots datasheet ~func b)

let flow_into acc lhs = function
  | `Var v -> Copy (lhs, v) :: acc
  | `Obj o -> Addr_of (lhs, o) :: acc

let gen_function datasheet (f : Func.t) =
  let func = f.name in
  let icalls = ref [] in
  let icall_counter = ref 0 in
  let constraints = ref [] in
  let add c = constraints := c :: !constraints in
  let flow lhs e = List.iter (fun r -> constraints := flow_into [] lhs r @ !constraints) (roots datasheet ~func e) in
  let rec gen_block block = List.iter gen_instr block
  and gen_instr instr =
    match instr with
    | Instr.Let (x, e) -> flow (Node.local ~func ~name:x) e
    | Instr.Alloca (x, _ty) ->
      add (Addr_of (Node.local ~func ~name:x, Node.stack ~func ~site:x))
    | Instr.Load (x, _w, a) ->
      List.iter
        (function
          | `Var v -> add (Load (Node.local ~func ~name:x, v))
          | `Obj o ->
            (* loading through &g directly: the loaded value may be any
               pointer stored into g (field-insensitive) *)
            add (Copy (Node.local ~func ~name:x, o)))
        (roots datasheet ~func a)
    | Instr.Store (_w, a, v) ->
      let rhs_roots = roots datasheet ~func v in
      List.iter
        (fun lhs_root ->
          List.iter
            (fun rhs ->
              match (lhs_root, rhs) with
              | `Var pv, `Var rv ->
                (* tmp: pts(o) ⊇ pts(rv) for o ∈ pts(pv) *)
                add (Store (pv, rv))
              | `Var pv, `Obj ro ->
                (* materialize through a synthetic copy node *)
                let tmp = Node.local ~func ~name:("$store" ^ string_of_int !icall_counter) in
                incr icall_counter;
                add (Addr_of (tmp, ro));
                add (Store (pv, tmp))
              | `Obj po, `Var rv -> add (Copy (po, rv))
              | `Obj po, `Obj ro ->
                let tmp = Node.local ~func ~name:("$store" ^ string_of_int !icall_counter) in
                incr icall_counter;
                add (Addr_of (tmp, ro));
                add (Copy (po, tmp)))
            rhs_roots)
        (roots datasheet ~func a)
    | Instr.Call (dst, callee, args) ->
      (match callee with
      | Instr.Direct g ->
        List.iteri
          (fun i arg ->
            let param = Node.local ~func:g ~name:(Printf.sprintf "$param%d" i) in
            flow param arg)
          args;
        Option.iter
          (fun x -> add (Copy (Node.local ~func ~name:x, Node.ret ~func:g)))
          dst
      | Instr.Indirect e ->
        let node = Node.icall ~func ~index:!icall_counter in
        let site =
          { ic_func = func; ic_index = !icall_counter; ic_node = node;
            ic_arity = List.length args }
        in
        incr icall_counter;
        icalls := site :: !icalls;
        flow node e;
        (* argument and return linking is added once targets are known *)
        List.iteri
          (fun i arg -> flow (node ^ Printf.sprintf "$arg%d" i) arg)
          args;
        Option.iter
          (fun x -> add (Copy (Node.local ~func ~name:x, node ^ "$ret")))
          dst)
    | Instr.Return (Some e) -> flow (Node.ret ~func) e
    | Instr.Return None | Instr.Svc _ | Instr.Halt | Instr.Nop -> ()
    | Instr.Memcpy (d, s, _n) ->
      (* *d ⊇ *s, conservatively *)
      List.iter
        (fun dr ->
          List.iter
            (fun sr ->
              match (dr, sr) with
              | `Var dv, `Var sv ->
                let tmp = Node.local ~func ~name:("$cpy" ^ string_of_int !icall_counter) in
                incr icall_counter;
                add (Load (tmp, sv));
                add (Store (dv, tmp))
              | `Var dv, `Obj so ->
                let tmp = Node.local ~func ~name:("$cpy" ^ string_of_int !icall_counter) in
                incr icall_counter;
                add (Copy (tmp, so));
                add (Store (dv, tmp))
              | `Obj dobj, `Var sv ->
                let tmp = Node.local ~func ~name:("$cpy" ^ string_of_int !icall_counter) in
                incr icall_counter;
                add (Load (tmp, sv));
                add (Copy (dobj, tmp))
              | `Obj dobj, `Obj so -> add (Copy (dobj, so)))
            (roots datasheet ~func s))
        (roots datasheet ~func d)
    | Instr.Memset _ -> ()
    | Instr.If (_, a, b) -> gen_block a; gen_block b
    | Instr.While (_, body) -> gen_block body
  in
  gen_block f.body;
  (* bind declared parameter names to the synthetic $paramN nodes *)
  List.iteri
    (fun i (x, _ty) ->
      add (Copy (Node.local ~func ~name:x, Node.local ~func ~name:(Printf.sprintf "$param%d" i))))
    f.params;
  (!constraints, List.rev !icalls)

(* --- solver ------------------------------------------------------------- *)

let solve_constraints constraints =
  let pts : (Node.t, Node.Set.t) Hashtbl.t = Hashtbl.create 256 in
  let get n = Option.value (Hashtbl.find_opt pts n) ~default:Node.Set.empty in
  let changed = ref true in
  let add_set n s =
    let cur = get n in
    let nxt = Node.Set.union cur s in
    if not (Node.Set.equal cur nxt) then begin
      Hashtbl.replace pts n nxt;
      changed := true
    end
  in
  let iterations = ref 0 in
  while !changed do
    changed := false;
    incr iterations;
    List.iter
      (function
        | Addr_of (lhs, obj) -> add_set lhs (Node.Set.singleton obj)
        | Copy (lhs, rhs) -> add_set lhs (get rhs)
        | Load (lhs, rhs) ->
          Node.Set.iter (fun o -> add_set lhs (get o)) (get rhs)
        | Store (lhs, rhs) ->
          Node.Set.iter (fun o -> add_set o (get rhs)) (get lhs))
      constraints
  done;
  (pts, !iterations)

(* --- driver with on-the-fly icall resolution --------------------------- *)

let solve (p : Program.t) =
  let t0 = Sys.time () in
  let datasheet = p.peripherals in
  let base_constraints, icalls =
    List.fold_left
      (fun (cs, ics) f ->
        let c, i = gen_function datasheet f in
        (c @ cs, i @ ics))
      ([], []) p.funcs
  in
  let funcs_by_name = Program.func_map p in
  (* iterate: solve, discover icall targets, add param/ret links, re-solve.
     [known] is a (site node, target) pair-set, so each round costs one
     hash probe per discovered target instead of a scan of every link
     wired so far. *)
  let known : (Node.t * string, unit) Hashtbl.t = Hashtbl.create 64 in
  let link_constraints (node, g) =
    let arity =
      match Program.String_map.find_opt g funcs_by_name with
      | Some gf -> Func.arity gf
      | None -> 0
    in
    let args =
      List.init arity (fun i ->
          Copy
            ( Node.local ~func:g ~name:(Printf.sprintf "$param%d" i),
              node ^ Printf.sprintf "$arg%d" i ))
    in
    Copy (node ^ "$ret", Node.ret ~func:g) :: args
  in
  let rec fixpoint extra total_iters =
    let pts, iters = solve_constraints (extra @ base_constraints) in
    let get n = Option.value (Hashtbl.find_opt pts n) ~default:Node.Set.empty in
    let new_links = ref [] in
    List.iter
      (fun site ->
        Node.Set.iter
          (fun target ->
            match Node.as_func target with
            | None -> ()
            | Some g ->
              if not (Hashtbl.mem known (site.ic_node, g)) then begin
                Hashtbl.replace known (site.ic_node, g) ();
                new_links := (site.ic_node, g) :: !new_links
              end)
          (get site.ic_node))
      icalls;
    match !new_links with
    | [] -> (pts, total_iters + iters)
    | links ->
      fixpoint (List.concat_map link_constraints links @ extra) (total_iters + iters)
  in
  let pts, iterations = fixpoint [] 0 in
  { pts; icalls; solve_time = Sys.time () -. t0; iterations }

(* --- queries ------------------------------------------------------------ *)

let points_to t ~func ~local = find_pts t (Node.local ~func ~name:local)

(* Function targets the analysis found for each indirect call site. *)
let icall_targets t site =
  Node.Set.fold
    (fun n acc -> match Node.as_func n with Some f -> f :: acc | None -> acc)
    (find_pts t site.ic_node) []
  |> List.sort String.compare

let icall_sites t = t.icalls
