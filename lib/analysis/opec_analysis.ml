(** Static analyses: points-to, call graph, resource dependencies. *)

module Node = Node
module Points_to = Points_to
module Type_resolve = Type_resolve
module Callgraph = Callgraph
module Resource = Resource
module Dataflow = Dataflow
module Syncset = Syncset
