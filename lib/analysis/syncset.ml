(* Static sync schedules.

   The monitor keeps one master copy of every shared ("external") global
   in the public section and a per-operation shadow in each user's data
   section; at every operation switch it used to copy *all* of the
   switching operations' shadow slots in both directions.  The dataflow
   analysis proves most of that traffic unnecessary at partition time:

   - RO: a slot the operation reads but provably never writes needs no
     shadow at all — the MPU's background region already grants
     unprivileged reads of the public section, so the relocation table
     can point straight at the master and every copy disappears.
     Ineligible: escaped or sanitized variables, and variables with
     pointer fields (their shadow fills localize pointers, which a
     direct master read would skip);

   - KILLED: a slot the operation provably overwrites whole before its
     first read (Dataflow's exposed-read analysis) never exposes its
     entry value, so the entry refill is dead traffic.  Kills apply to
     fresh entries only — a resume mid-activation may land after the
     overwrite — and are disabled entirely under conservative
     scheduling, where yields make every point a potential resume;

   - FILL: what is left of the relevant (may-read ∪ may-write) slots
     after RO and KILLED: the slots whose shadow must actually be fresh
     when the operation starts (may-write matters too: sync is
     whole-variable, so a stale shadow that will be synced out later
     must be refreshed first);

   - OUT: the may-write slots some *other* operation can observe — at
     entry (its fill set), directly (its RO mapping), or after a
     mid-activation suspension (its relevant set, when the operation
     can suspend at all).  Writes nobody can observe are never
     published ("dead publish"); the fuzz harness excludes exactly
     those variables from its final-state comparison;

   - ENTER: the fill set intersected with the union of every other
     operation's OUT set — a shadow needs refilling only when someone
     may actually have changed the master since;

   - RESUME: on an operation exit returning to its suspended caller,
     only operations reachable from the exiting operation can have run,
     so the (src, dst) pair restricts the union to OUT sets of ops in
     reach*(src).  The resume domain is relevant-minus-RO, not the fill
     set: kills do not protect reads that follow a suspension point.

   Globals whose address escaped to a peripheral (Dataflow.escaped_globals)
   have no static write bound and stay in every set where the operation
   holds a slot; sanitized globals are pinned into fill and out so the
   monitor's exit-time range check always guards a fresh value.
   Programs containing raw SVCs (cooperative-thread yields) switch at
   points the operation-call relation cannot see, so resume scheduling
   falls back to the enter sets and kills are disabled. *)

module SS = Set.Make (String)

type op_view = {
  ov_name : string;
  ov_entry : string;
  ov_funcs : SS.t;   (** member functions, icall targets included *)
  ov_slots : SS.t;   (** shadowed (external) globals the op may access *)
  ov_killed : SS.t;  (** slots provably overwritten before any read *)
}

type t = {
  views : op_view list;
  reads : (string, SS.t) Hashtbl.t;       (** raw may-read, all globals *)
  writes : (string, SS.t) Hashtbl.t;      (** raw may-write, all globals *)
  out_sets : (string, SS.t) Hashtbl.t;
  enter_sets : (string, SS.t) Hashtbl.t;
  resume_sets : (string * string, SS.t) Hashtbl.t;
  resume_fallback : (string, SS.t) Hashtbl.t;
  relevant_sets : (string, SS.t) Hashtbl.t;
  ro_sets : (string, SS.t) Hashtbl.t;
  fill_sets : (string, SS.t) Hashtbl.t;
  unobserved_sets : (string, SS.t) Hashtbl.t;
  escaped : SS.t;
  sanitized : SS.t;
  conservative_resume : bool;
}

let find_exn what tbl key =
  match Hashtbl.find_opt tbl key with
  | Some v -> v
  | None -> invalid_arg ("Syncset: no " ^ what ^ " for operation " ^ key)

let ops t = List.map (fun ov -> ov.ov_name) t.views
let slots_of t name =
  match List.find_opt (fun ov -> String.equal ov.ov_name name) t.views with
  | Some ov -> ov.ov_slots
  | None -> invalid_arg ("Syncset: unknown operation " ^ name)

let may_read t name = find_exn "read set" t.reads name
let may_write t name = find_exn "write set" t.writes name
let out_set t name = find_exn "out set" t.out_sets name
let enter_set t name = find_exn "enter set" t.enter_sets name
let relevant_set t name = find_exn "relevant set" t.relevant_sets name
let ro_set t name = find_exn "read-only set" t.ro_sets name
let fill_set t name = find_exn "fill set" t.fill_sets name
let unobserved_set t name = find_exn "unobserved set" t.unobserved_sets name
let escaped t = t.escaped
let conservative_resume t = t.conservative_resume

(* Every global some operation writes without any observer: its master
   is never refreshed by a sync-out, so an external checker must not
   compare it against the baseline's final memory. *)
let unobserved t =
  Hashtbl.fold (fun _ s acc -> SS.union acc s) t.unobserved_sets SS.empty

(* Resume falls back to the conservative per-destination set — the full
   relevant-minus-RO domain against every other operation's OUT — for
   unknown pairs (a switch path the reachability relation did not
   predict) and always under conservative scheduling. *)
let resume_set t ~src ~dst =
  let fallback () =
    match Hashtbl.find_opt t.resume_fallback dst with
    | Some s -> s
    | None -> enter_set t dst
  in
  if t.conservative_resume then fallback ()
  else
    match Hashtbl.find_opt t.resume_sets (src, dst) with
    | Some s -> s
    | None -> fallback ()

(* (src, dst) pairs with an explicit resume schedule, in a deterministic
   order (outer list order of the constructor's [ops]). *)
let pairs t =
  if t.conservative_resume then []
  else
    List.concat_map
      (fun src ->
        List.filter_map
          (fun dst ->
            if Hashtbl.mem t.resume_sets (src.ov_name, dst.ov_name) then
              Some (src.ov_name, dst.ov_name)
            else None)
          t.views)
      t.views

let compute ~(ops : op_view list) ~(callgraph : Callgraph.t)
    ~(rw : Dataflow.t) ~(escaped : SS.t) ~(sanitized : SS.t)
    ~(ptr_vars : SS.t) ~(has_irq : bool)
    ~(conservative_resume : bool) : t =
  let n = List.length ops in
  let reads = Hashtbl.create n and writes = Hashtbl.create n in
  List.iter
    (fun ov ->
      let { Dataflow.reads = r; writes = w } =
        Dataflow.of_funcs rw ov.ov_funcs
      in
      Hashtbl.replace reads ov.ov_name r;
      Hashtbl.replace writes ov.ov_name w)
    ops;
  (* operation reachability: o -> o' when a member of o calls o''s entry;
     also the static "can this operation suspend mid-activation" bit. *)
  let by_entry = Hashtbl.create n in
  List.iter (fun ov -> Hashtbl.replace by_entry ov.ov_entry ov.ov_name) ops;
  let succ = Hashtbl.create n in
  List.iter
    (fun ov ->
      let s =
        SS.fold
          (fun f acc ->
            SS.fold
              (fun callee acc ->
                match Hashtbl.find_opt by_entry callee with
                | Some o' when not (String.equal o' ov.ov_name) ->
                  SS.add o' acc
                | _ -> acc)
              (Callgraph.callees callgraph f)
              acc)
          ov.ov_funcs SS.empty
      in
      Hashtbl.replace succ ov.ov_name s)
    ops;
  let suspends ov =
    has_irq || conservative_resume
    || not (SS.is_empty (find_exn "successors" succ ov.ov_name))
  in
  (* the no-copy slices: read-only master mapping and entry kills *)
  let ro_sets = Hashtbl.create n in
  let relevant_sets = Hashtbl.create n in
  let fill_sets = Hashtbl.create n in
  List.iter
    (fun ov ->
      let r = Hashtbl.find reads ov.ov_name
      and w = Hashtbl.find writes ov.ov_name in
      let esc = SS.inter escaped ov.ov_slots in
      let san = SS.inter sanitized ov.ov_slots in
      let relevant = SS.union (SS.inter (SS.union r w) ov.ov_slots) esc in
      let ro =
        SS.diff
          (SS.inter (SS.diff r w) ov.ov_slots)
          (SS.union (SS.union escaped sanitized) ptr_vars)
      in
      let killed =
        if conservative_resume then SS.empty
        else
          SS.diff (SS.inter ov.ov_killed ov.ov_slots)
            (SS.union escaped sanitized)
      in
      let fill =
        SS.union (SS.diff relevant (SS.union ro killed)) (SS.union esc san)
      in
      Hashtbl.replace relevant_sets ov.ov_name relevant;
      Hashtbl.replace ro_sets ov.ov_name ro;
      Hashtbl.replace fill_sets ov.ov_name fill)
    ops;
  (* observers per variable, then dead-publish-filtered out sets *)
  let observers v =
    List.fold_left
      (fun acc ov ->
        let sees =
          SS.mem v (Hashtbl.find fill_sets ov.ov_name)
          || SS.mem v (Hashtbl.find ro_sets ov.ov_name)
          || (suspends ov
              && SS.mem v (Hashtbl.find relevant_sets ov.ov_name))
        in
        if sees then SS.add ov.ov_name acc else acc)
      SS.empty ops
  in
  let out_sets = Hashtbl.create n in
  let unobserved_sets = Hashtbl.create n in
  List.iter
    (fun ov ->
      let esc = SS.inter escaped ov.ov_slots in
      let san = SS.inter sanitized ov.ov_slots in
      let w = SS.inter (Hashtbl.find writes ov.ov_name) ov.ov_slots in
      (* A publish may be dropped (dead publish) only when all three
         hold: no other operation observes the slot; the operation
         itself kills it (a slot it re-reads across activations must
         keep shadow = master at every exit, or the incremental-copy
         epoch bookkeeping loses the write ordering); and the operation
         never suspends (a mid-activation switch publishes so the
         resume refill can restore the in-progress value). *)
      let fill = Hashtbl.find fill_sets ov.ov_name in
      let observed =
        SS.filter
          (fun v ->
            suspends ov || SS.mem v fill
            || not (SS.is_empty (SS.remove ov.ov_name (observers v))))
          w
      in
      let out = SS.union observed (SS.union esc san) in
      Hashtbl.replace out_sets ov.ov_name out;
      Hashtbl.replace unobserved_sets ov.ov_name (SS.diff w out))
    ops;
  let others_out name =
    List.fold_left
      (fun acc ov' ->
        if String.equal ov'.ov_name name then acc
        else SS.union acc (Hashtbl.find out_sets ov'.ov_name))
      SS.empty ops
  in
  let enter_sets = Hashtbl.create n in
  let resume_fallback = Hashtbl.create n in
  List.iter
    (fun ov ->
      let esc = SS.inter escaped ov.ov_slots in
      let outs = others_out ov.ov_name in
      Hashtbl.replace enter_sets ov.ov_name
        (SS.union (SS.inter (Hashtbl.find fill_sets ov.ov_name) outs) esc);
      (* the resume domain ignores kills: a mid-activation resume can
         land between the overwrite and the reads it licenses *)
      let resume_domain =
        SS.diff
          (Hashtbl.find relevant_sets ov.ov_name)
          (Hashtbl.find ro_sets ov.ov_name)
      in
      Hashtbl.replace resume_fallback ov.ov_name
        (SS.union (SS.inter resume_domain outs) esc))
    ops;
  (* reach*(o): the ops that can have run while an operation suspended
     under [o] was waiting — reflexive transitive closure of succ. *)
  let resume_sets = Hashtbl.create (n * n) in
  if not conservative_resume then begin
    let rec close frontier acc =
      if SS.is_empty frontier then acc
      else
        let next =
          SS.fold
            (fun o acc' ->
              SS.union acc'
                (Option.value (Hashtbl.find_opt succ o) ~default:SS.empty))
            frontier SS.empty
        in
        let fresh = SS.diff next acc in
        close fresh (SS.union acc fresh)
    in
    List.iter
      (fun src ->
        let ran = close (SS.singleton src.ov_name) (SS.singleton src.ov_name) in
        List.iter
          (fun dst ->
            let esc = SS.inter escaped dst.ov_slots in
            let outs =
              SS.fold
                (fun o acc ->
                  if String.equal o dst.ov_name then acc
                  else SS.union acc (Hashtbl.find out_sets o))
                ran SS.empty
            in
            let resume_domain =
              SS.diff
                (Hashtbl.find relevant_sets dst.ov_name)
                (Hashtbl.find ro_sets dst.ov_name)
            in
            Hashtbl.replace resume_sets (src.ov_name, dst.ov_name)
              (SS.union (SS.inter resume_domain outs) esc))
          ops)
      ops
  end;
  { views = ops; reads; writes; out_sets; enter_sets; resume_sets;
    resume_fallback; relevant_sets; ro_sets; fill_sets; unobserved_sets;
    escaped; sanitized; conservative_resume }
