(* Per-function resource dependency analysis (paper, Section 4.2):
   which global variables (directly and through pointers) and which
   peripherals each function may access. *)

open Opec_ir
module SS = Set.Make (String)

type func_resources = {
  direct_globals : SS.t;
  indirect_globals : SS.t;   (** via the points-to analysis *)
  peripherals : SS.t;        (** general peripherals, by datasheet name *)
  core_peripherals : SS.t;   (** peripherals on the PPB *)
}

let empty =
  { direct_globals = SS.empty;
    indirect_globals = SS.empty;
    peripherals = SS.empty;
    core_peripherals = SS.empty }

let globals r = SS.union r.direct_globals r.indirect_globals

let union a b =
  { direct_globals = SS.union a.direct_globals b.direct_globals;
    indirect_globals = SS.union a.indirect_globals b.indirect_globals;
    peripherals = SS.union a.peripherals b.peripherals;
    core_peripherals = SS.union a.core_peripherals b.core_peripherals }

type t = (string, func_resources) Hashtbl.t

let classify_periph datasheet acc name =
  match List.find_opt (fun (p : Peripheral.t) -> String.equal p.name name) datasheet with
  | Some p when p.core -> { acc with core_peripherals = SS.add name acc.core_peripherals }
  | Some _ -> { acc with peripherals = SS.add name acc.peripherals }
  | None -> acc

(* Resources reachable from an address expression in [func]. *)
let expr_resources (p : Program.t) pts ~func acc (e : Expr.t) =
  let datasheet = p.peripherals in
  List.fold_left
    (fun acc root ->
      match root with
      | `Obj o -> (
        match Node.as_global o with
        | Some g -> { acc with direct_globals = SS.add g acc.direct_globals }
        | None -> (
          match Node.as_periph o with
          | Some pr -> classify_periph datasheet acc pr
          | None -> acc))
      | `Var v ->
        Node.Set.fold
          (fun o acc ->
            match Node.as_global o with
            | Some g ->
              { acc with indirect_globals = SS.add g acc.indirect_globals }
            | None -> (
              match Node.as_periph o with
              | Some pr -> classify_periph datasheet acc pr
              | None -> acc))
          (Points_to.find_pts pts v)
          acc)
    acc
    (Points_to.roots datasheet ~func e)

(* Address-taken globals.  A [Global_addr] in value position (bound,
   stored, passed or returned) escapes the function that forms it: at
   run time the operation resolves the address through its relocation
   slot, which is NULL unless the variable is in the operation's
   resources.  So taking an address is itself a dependency, even when
   the taker never dereferences it — the dereferencing functions are
   found separately through the points-to sets. *)
let rec taken acc (e : Expr.t) =
  match e with
  | Expr.Global_addr g -> SS.add g acc
  | Expr.Bin (_, a, b) -> taken (taken acc a) b
  | Expr.Un (_, a) -> taken acc a
  | Expr.Const _ | Expr.Local _ | Expr.Func_addr _ -> acc

let instr_exprs (i : Instr.t) =
  match i with
  | Instr.Let (_, e) -> [ e ]
  | Instr.Load (_, _, a) -> [ a ]
  | Instr.Store (_, a, v) -> [ a; v ]
  | Instr.Call (_, callee, args) -> (
    match callee with
    | Instr.Indirect e -> e :: args
    | Instr.Direct _ -> args)
  | Instr.If (c, _, _) | Instr.While (c, _) -> [ c ]
  | Instr.Return (Some e) -> [ e ]
  | Instr.Memcpy (a, b, n) | Instr.Memset (a, b, n) -> [ a; b; n ]
  | Instr.Alloca _ | Instr.Return None | Instr.Svc _ | Instr.Halt
  | Instr.Nop -> []

let analyze_function (p : Program.t) pts (f : Func.t) =
  let func = f.name in
  let acc = ref empty in
  Instr.iter_block
    (fun instr ->
      (match instr with
      | Instr.Load (_, _, a) -> acc := expr_resources p pts ~func !acc a
      | Instr.Store (_, a, _) -> acc := expr_resources p pts ~func !acc a
      | Instr.Memcpy (d, s, _) ->
        acc := expr_resources p pts ~func !acc d;
        acc := expr_resources p pts ~func !acc s
      | Instr.Memset (d, _, _) -> acc := expr_resources p pts ~func !acc d
      | Instr.Let _ | Instr.Alloca _ | Instr.Call _ | Instr.If _
      | Instr.While _ | Instr.Return _ | Instr.Svc _ | Instr.Halt
      | Instr.Nop -> ());
      let t = List.fold_left taken SS.empty (instr_exprs instr) in
      if not (SS.is_empty t) then
        acc := { !acc with direct_globals = SS.union t !acc.direct_globals })
    f.body;
  !acc

let analyze (p : Program.t) pts : t =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (f : Func.t) -> Hashtbl.replace tbl f.name (analyze_function p pts f))
    p.funcs;
  tbl

let of_func (t : t) name = Option.value (Hashtbl.find_opt t name) ~default:empty

(* Merged resources of a set of functions — the resource dependency of an
   operation or an ACES compartment. *)
let of_funcs (t : t) names =
  SS.fold (fun f acc -> union acc (of_func t f)) names empty
