(** Interprocedural may-read/may-write dataflow analysis.

    Splits the combined access sets of {!Resource} by direction: which
    globals each function may load from and may store to, through direct
    references and through every pointer the points-to analysis resolves
    (address-taken globals, [memcpy] propagation, icall targets).  The
    lattice is the flow-insensitive powerset of global names; all sets
    are sound over-approximations of the dynamic access sets.  The
    static sync schedules ({!Syncset}) are folded from these. *)

open Opec_ir

module SS : Set.S with type elt = string and type t = Set.Make(String).t

type func_rw = {
  reads : SS.t;   (** globals the function may load from *)
  writes : SS.t;  (** globals the function may store to *)
}

val empty : func_rw
val union : func_rw -> func_rw -> func_rw

type t = (string, func_rw) Hashtbl.t

(** Per-function may-read/may-write sets for the whole program. *)
val analyze : Program.t -> Points_to.t -> t

(** A single function's sets ({!empty} when unknown). *)
val of_func : t -> string -> func_rw

(** Join over a set of functions — an operation's sets when applied to
    its member set (whose closure already includes icall targets). *)
val of_funcs : t -> SS.t -> func_rw

(** Globals whose address was stored into a peripheral window: a device
    may access them at any time, so no static write bound exists (lint
    L010 reports these). *)
val escaped_globals : Program.t -> Points_to.t -> SS.t

(** Whether the program contains a raw [Svc] instruction (cooperative
    thread yields), forcing conservative resume scheduling. *)
val has_svc : Program.t -> bool

(** Whether the program declares an interrupt handler: an IRQ-entered
    operation can preempt any other mid-activation, which forces the
    sync schedules to keep suspension-aware observers for every
    operation. *)
val has_irq : Program.t -> bool

(** {1 Exposed-read (kill) analysis}

    A flow-sensitive refinement over the may sets: per operation, which
    globals are provably overwritten whole before any read on every
    path ("killed"), so the value the variable held at operation entry
    is dead and the monitor can skip the entry refill.  The analysis
    walks the operation interprocedurally with a three-point lattice
    (Killed < Unseen < NeedsFill, join = max), recognizing
    whole-variable stores, covering [Memcpy]/[Memset], and the
    constant-trip-count fill loop emitted by [Build.for_]; it resolves
    indirect calls through function-pointer dispatch tables
    offset-sensitively.  Address-taken variables are never killed, and
    unresolvable calls or recursion degrade to NeedsFill — the result
    is sound by construction and dynamically cross-checked by lint
    L011's trace replay. *)

type exposure

(** Pre-compute the program-wide facts (address-taken set,
    function-pointer tables) the per-operation walks share.
    [op_entries] are the operation entry functions: calls crossing an
    entry are opaque operation switches, not inlined callees. *)
val exposure :
  Program.t -> Points_to.t -> t -> Callgraph.t -> op_entries:SS.t -> exposure

(** Globals whose entry value the operation rooted at [entry] provably
    never observes.  Memoized per entry. *)
val killed_of : exposure -> entry:string -> SS.t

(** Globals carrying type-level pointer fields: ineligible for
    read-only master mapping because shadow fills localize pointer
    fields, which a direct master read would skip. *)
val pointer_vars : Program.t -> SS.t
