(* The assembled ACES baseline: partition a program under one of the three
   strategies, model its region assignment, and derive the cost metrics
   Table 2 compares (runtime from switch counts on a trace, flash from
   per-compartment metadata, SRAM from region padding, and the privileged
   application code the lifting causes). *)

open Opec_ir
module SS = Set.Make (String)
module R = Opec_analysis.Resource
module CG = Opec_analysis.Callgraph

type t = {
  kind : Strategy.kind;
  program : Program.t;
  compartments : Compartment.t list;
  regions : Region_merge.t;
  resources : R.t;
}

let build kind (p : Program.t) (cg : CG.t) (resources : R.t) =
  let compartments = Strategy.partition kind p cg resources in
  let data_region_limit =
    match kind with Strategy.Filename -> 1 | Strategy.Filename_no_opt | Strategy.By_peripheral -> 2
  in
  let regions = Region_merge.build ~data_region_limit p compartments in
  { kind; program = p; compartments; regions; resources }

let analyze kind (p : Program.t) =
  let pts = Opec_analysis.Points_to.solve p in
  let cg = Opec_analysis.Callgraph.build p pts in
  let resources = Opec_analysis.Resource.analyze p pts in
  build kind p cg resources

(* --- metrics ------------------------------------------------------------ *)

let compartment_of t f = Strategy.compartment_of t.compartments f

(* Compartment switches along a call trace: every call or return edge that
   crosses a compartment boundary is a switch (ACES switches on
   inter-compartment transfers). *)
let count_switches t (events : Opec_exec.Trace.event list) =
  (* the trace revisits the same few hundred functions millions of
     times; resolve each name's compartment once *)
  let comp_cache = Hashtbl.create 64 in
  let comp f =
    match Hashtbl.find_opt comp_cache f with
    | Some i -> i
    | None ->
      let i =
        match compartment_of t f with
        | Some c -> c.Compartment.index
        | None -> -1
      in
      Hashtbl.add comp_cache f i;
      i
  in
  let switches = ref 0 in
  let stack = ref [] in
  let enter f =
    (match !stack with
    | cur :: _ when comp f <> cur -> incr switches
    | [] | _ :: _ -> ());
    stack := comp f :: !stack
  in
  let leave _f =
    match !stack with
    | c :: (prev :: _ as rest) ->
      if c <> prev then incr switches;
      stack := rest
    | [ _ ] | [] -> stack := []
  in
  List.iter
    (function
      | Opec_exec.Trace.Call f | Opec_exec.Trace.Op_enter f -> enter f
      | Opec_exec.Trace.Return f | Opec_exec.Trace.Op_exit f -> leave f
      | Opec_exec.Trace.Access _ -> ())
    events;
  !switches

(* cycles one ACES compartment switch costs: SVC entry/exit, MPU
   reconfiguration of the data regions, and the switch bookkeeping *)
let switch_cost_cycles = 60

(* Privileged application code bytes: the code of compartments that were
   lifted to the privileged level to reach core peripherals. *)
let privileged_app_code t =
  let fmap = Program.func_map t.program in
  List.fold_left
    (fun acc (c : Compartment.t) ->
      if c.Compartment.privileged then
        SS.fold
          (fun f acc ->
            match Program.String_map.find_opt f fmap with
            | Some fn -> acc + Program.code_size_of_func fn
            | None -> acc)
          c.Compartment.funcs acc
      else acc)
    0 t.compartments

let total_app_code t = Program.code_size t.program

let privileged_app_code_pct t =
  100.0 *. float_of_int (privileged_app_code t) /. float_of_int (total_app_code t)

(* Flash overhead: per-compartment metadata (MPU configurations, region
   table, emulator allow lists) plus the instrumentation ACES inserts at
   every call edge that crosses a compartment boundary. *)
let metadata_bytes_per_compartment = 96
let bytes_per_cross_edge = 16

let cross_compartment_edges t =
  let comp f =
    match Strategy.compartment_of t.compartments f with
    | Some c -> c.Compartment.index
    | None -> -1
  in
  List.fold_left
    (fun acc (f : Opec_ir.Func.t) ->
      let cf = comp f.Opec_ir.Func.name in
      Opec_ir.Instr.fold_block
        (fun acc instr ->
          match instr with
          | Opec_ir.Instr.Call (_, Opec_ir.Instr.Direct g, _) when comp g <> cf ->
            acc + 1
          | _ -> acc)
        acc f.Opec_ir.Func.body)
    0 t.program.Program.funcs

let flash_overhead_bytes t =
  (List.length t.compartments * metadata_bytes_per_compartment)
  + (cross_compartment_edges t * bytes_per_cross_edge)
  + 4096 (* ACES runtime library (compartment switcher + micro-emulator) *)

let sram_overhead_bytes t = Region_merge.sram_padding t.regions

let pp fmt t =
  Fmt.pf fmt "@[<v>ACES %s: %d compartments@,%a@]" (Strategy.name t.kind)
    (List.length t.compartments)
    (Fmt.list ~sep:(Fmt.any "@,") Compartment.pp)
    t.compartments
