(* Structured diagnostics for the policy-verification linter. *)

type severity = Error | Warning | Info

type loc =
  | Program
  | Function of string
  | Operation of string
  | Icall of { func : string; index : int }
  | Region of { op : string; slot : string }
  | Address of int

type t = { code : string; severity : severity; loc : loc; message : string }

let v ~code severity loc message = { code; severity; loc; message }

let vf ~code severity loc fmt =
  Format.kasprintf (fun message -> { code; severity; loc; message }) fmt

let is_error d = d.severity = Error

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let compare a b =
  match Int.compare (severity_rank a.severity) (severity_rank b.severity) with
  | 0 -> (
    match String.compare a.code b.code with
    | 0 -> Stdlib.compare (a.loc, a.message) (b.loc, b.message)
    | c -> c)
  | c -> c

let pp_severity fmt s =
  Fmt.string fmt
    (match s with Error -> "error" | Warning -> "warning" | Info -> "info")

let pp_loc fmt = function
  | Program -> Fmt.string fmt "program"
  | Function f -> Fmt.pf fmt "function %s" f
  | Operation op -> Fmt.pf fmt "operation %s" op
  | Icall { func; index } -> Fmt.pf fmt "icall %s#%d" func index
  | Region { op; slot } -> Fmt.pf fmt "operation %s/region %s" op slot
  | Address a -> Fmt.pf fmt "address 0x%08X" a

let pp fmt d =
  Fmt.pf fmt "%s %a [%a] %s" d.code pp_severity d.severity pp_loc d.loc
    d.message

(* --- JSON (hand-rendered; the tree carries no JSON library) ------------ *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04X" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let loc_json = function
  | Program -> Printf.sprintf {|{"kind":"program"}|}
  | Function f -> Printf.sprintf {|{"kind":"function","name":"%s"}|} (json_escape f)
  | Operation op ->
    Printf.sprintf {|{"kind":"operation","name":"%s"}|} (json_escape op)
  | Icall { func; index } ->
    Printf.sprintf {|{"kind":"icall","function":"%s","index":%d}|}
      (json_escape func) index
  | Region { op; slot } ->
    Printf.sprintf {|{"kind":"region","operation":"%s","slot":"%s"}|}
      (json_escape op) (json_escape slot)
  | Address a -> Printf.sprintf {|{"kind":"address","address":%d}|} a

let to_json d =
  Printf.sprintf {|{"code":"%s","severity":"%s","loc":%s,"message":"%s"}|}
    (json_escape d.code)
    (Fmt.str "%a" pp_severity d.severity)
    (loc_json d.loc) (json_escape d.message)
