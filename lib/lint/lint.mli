(** Checker registry and linter driver.

    [run] executes every registered checker over a compiled image and
    returns the sorted diagnostics.  Static checkers always run; the
    dynamic trace oracle (L007) needs an execution trace, so it only
    runs when [~dynamic:true], drawing that trace from the optional
    [source]: either a [Live] world to replay on, or a [Recorded]
    baseline trace — typically the compile-once pipeline's memoized
    traced run, which costs no extra execution. *)

(** Produces the board's devices, input already prepared (e.g. an
    application's [make_world] followed by [prepare]). *)
type world = unit -> Opec_machine.Device.t list

(** An already recorded memory-traced baseline run: the vanilla
    layout's address map, the event stream, and the exception that
    ended the run (if any). *)
type recorded = {
  map : Opec_exec.Address_map.t;
  events : Opec_exec.Trace.event list;
  failure : exn option;
}

type source = Live of world | Recorded of recorded

type checker = {
  code : string;       (** stable diagnostic code, ["L001"].. *)
  name : string;       (** short kebab-case name *)
  doc : string;        (** one-line description *)
  dynamic : bool;      (** needs to execute the program *)
  run : source option -> Opec_core.Image.t -> Diag.t list;
}

(** The registry, in code order.  Extend by adding a checker here and a
    row to the README table; codes are never reused. *)
val checkers : checker list

val find_checker : string -> checker option

(** Run the registry over an image; [dynamic] defaults to [false]. *)
val run : ?dynamic:bool -> ?source:source -> Opec_core.Image.t -> Diag.t list

val errors : Diag.t list -> Diag.t list

(** Render a report: one line per diagnostic plus a summary.  Info
    diagnostics are hidden unless [all] is set. *)
val render : ?all:bool -> Format.formatter -> Diag.t list -> unit

(** The diagnostics as a JSON array. *)
val to_json : Diag.t list -> string
