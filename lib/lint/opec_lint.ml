(** Static policy verification and diagnostics for compiled images: a
    structured {!Diag} framework, the {!Checks} and {!Oracle} checkers,
    and the {!Lint} registry driving them. *)

module Diag = Diag
module Checks = Checks
module Oracle = Oracle
module Lint = Lint
