(** The static policy checkers (codes L001–L006, L008–L010).

    Each checker examines one facet of a compiled {!Opec_core.Image.t}
    against the isolation policy the OPEC compiler derived: indirect-call
    resolution, operation reachability, MPU-plan legality, resource-set
    soundness, over-privilege, SVC instrumentation, layout consistency,
    and sync-schedule soundness.  The dynamic trace oracles (L007, L011)
    live in {!Oracle}. *)

type check = Opec_core.Image.t -> Diag.t list

(** L001: indirect-call sites the points-to analysis could not resolve
    (error), or that fell back to type-based matching (warning). *)
val unresolved_icall : check

(** L002: functions belonging to no operation — dead code the policy
    does not cover (info: linked-library code is legitimately unused). *)
val unreachable_function : check

(** L003: every operation's protection plan is constructible and legal
    under the image's backend.  On the MPU: region sizes, base
    alignment, sub-region masks, and coverage of the code span, data
    section, and every merged peripheral range.  On PMP / CHERI / POE:
    data-section fit and the backend's alignment rule (power-of-two,
    granule, or bounds representability), peripheral coverage, and the
    entry or key budget under the backend's fault model. *)
val mpu_plan_validity : check

(** L004: soundness of resource coverage — every resource of every
    member function is included in its operation's resource set.  A miss
    here is a hole in the paper's core invariant (Section 4.2). *)
val resource_coverage : check

(** L005: over-privilege — resources granted to an operation that no
    member function needs, plus any nonzero partition-time
    over-privilege sample from {!Opec_metrics.Overprivilege.opec_pt}. *)
val over_privilege : check

(** L006: SVC instrumentation — every non-default operation entry is in
    the image's entry list (and vice versa), entries are valid switch
    targets, no stray [Svc] instruction bypasses the monitor protocol,
    and the recorded SVC-site count matches a recount. *)
val svc_instrumentation : check

(** L008: layout consistency — sections within SRAM bounds and their MPU
    spans mutually disjoint, and every accessible writable global of
    every operation has the addresses instrumentation relies on (master,
    shadow, relocation slot). *)
val layout_consistency : check

(** L009: sync-schedule soundness — recomputes the static sync schedule
    from the image's analysis artifacts and demands the embedded one is
    at least as strong (no required slot missing from an out / enter /
    resume set) and stays inside each operation's shadow-slot domain. *)
val sync_schedule_soundness : check

(** L010: unsyncable escape — warns about every global whose address
    escaped into a peripheral window (no static write bound exists) and
    errors if the embedded schedule is not conservative for it wherever
    a slot exists. *)
val unsyncable_escape : check
