(** L007: the dynamic trace oracle.

    Replays the application's unprotected baseline build with
    memory-access tracing enabled, attributes every access to the
    operation that would be active at that point under OPEC, and checks
    it against that operation's *static* resource set.  Any access the
    policy did not predict is an error: it would fault under the MPU in
    a protected run, so the static analysis under-approximated — the
    one failure mode the paper's soundness argument excludes.

    The replay runs the vanilla layout (not the OPEC image), so the
    oracle cross-checks the policy against ground-truth behaviour that
    the instrumentation cannot have masked. *)

(** [check_trace ~map ~events ~failure image] walks an already recorded
    baseline trace (with memory accesses) against the image's static
    policy.  [map] is the vanilla layout's address map of the replay,
    [failure] the exception that ended it, if any.  This is the oracle's
    core; the pipeline's memoized traced baseline feeds it directly, so
    linting costs no private replay.  Findings are deduplicated per
    (operation, resource) pair. *)
val check_trace :
  map:Opec_exec.Address_map.t ->
  events:Opec_exec.Trace.event list ->
  failure:exn option ->
  Opec_core.Image.t ->
  Diag.t list

(** [check ?devices image] replays the baseline itself and checks the
    trace.  [devices] are the board devices (with their input already
    prepared). *)
val check :
  ?devices:Opec_machine.Device.t list -> Opec_core.Image.t -> Diag.t list

(** L011: the sync-schedule soundness oracle.  Walks the same recorded
    baseline trace, simulating the monitor's schedule-driven copies as
    value generations, and reports (a) any observed write outside the
    writing operation's static may-write set and (b) any read that would
    observe a shadow a scheduled copy failed to refresh (a stale-read
    hazard).  Returns nothing when the replay failed — L007 already
    reports that. *)
val check_sync_trace :
  map:Opec_exec.Address_map.t ->
  events:Opec_exec.Trace.event list ->
  failure:exn option ->
  Opec_core.Image.t ->
  Diag.t list

(** [check_sync ?devices image] replays the baseline itself and runs
    {!check_sync_trace}. *)
val check_sync :
  ?devices:Opec_machine.Device.t list -> Opec_core.Image.t -> Diag.t list
