(** L007: the dynamic trace oracle.

    Replays the application's unprotected baseline build with
    memory-access tracing enabled, attributes every access to the
    operation that would be active at that point under OPEC, and checks
    it against that operation's *static* resource set.  Any access the
    policy did not predict is an error: it would fault under the MPU in
    a protected run, so the static analysis under-approximated — the
    one failure mode the paper's soundness argument excludes.

    The replay runs the vanilla layout (not the OPEC image), so the
    oracle cross-checks the policy against ground-truth behaviour that
    the instrumentation cannot have masked. *)

(** [check ?devices image] runs the baseline and returns the
    diagnostics.  [devices] are the board devices (with their input
    already prepared); findings are deduplicated per (operation,
    resource) pair. *)
val check :
  ?devices:Opec_machine.Device.t list -> Opec_core.Image.t -> Diag.t list
