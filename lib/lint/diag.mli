(** Structured diagnostics for the policy-verification linter.

    Every finding carries a stable code (["L001"]..), a severity, a
    location in the artifact being checked (a function, an operation, an
    MPU region slot, ...), and a human-readable message.  Codes are part
    of the tool's contract: tests and CI match on them, so a checker
    never changes its code once shipped. *)

type severity = Error | Warning | Info

type loc =
  | Program                                  (** the whole image *)
  | Function of string
  | Operation of string
  | Icall of { func : string; index : int }  (** indirect call site *)
  | Region of { op : string; slot : string } (** MPU region of an operation *)
  | Address of int                           (** a raw address (trace oracle) *)

type t = { code : string; severity : severity; loc : loc; message : string }

val v : code:string -> severity -> loc -> string -> t

(** [vf ~code sev loc fmt ...] formats the message in place. *)
val vf :
  code:string -> severity -> loc -> ('a, Format.formatter, unit, t) format4 -> 'a

val is_error : t -> bool

(** Orders by severity (errors first), then code, then location. *)
val compare : t -> t -> int

val pp_severity : Format.formatter -> severity -> unit
val pp_loc : Format.formatter -> loc -> unit

(** One line: [L003 error [operation lock/region P4] message]. *)
val pp : Format.formatter -> t -> unit

(** A JSON object (hand-rendered; no JSON library in the tree). *)
val to_json : t -> string
