(* L007: dynamic trace oracle (see oracle.mli).

   The baseline interpreter records Call/Return events and — with the
   trace's [mem] flag set — every MPU-visible load and store.  Walking
   that stream with a stack of active operations reproduces exactly the
   attribution the monitor would make at runtime: an access belongs to
   the innermost entered operation, because that is the operation whose
   MPU plan would be live. *)

open Opec_ir
module C = Opec_core
module A = Opec_analysis
module M = Opec_machine
module E = Opec_exec
module SS = A.Resource.SS

(* Sorted interval table of the baseline's globals, searched per access. *)
type interval = {
  lo : int;
  hi : int;
  g_name : string;
  g_const : bool;
}

let interval_table (image : C.Image.t) (map : E.Address_map.t) =
  let arr =
    List.map
      (fun (g : Global.t) ->
        let lo = map.global_addr g.name in
        { lo; hi = lo + Global.size g; g_name = g.name; g_const = g.const })
      image.source.globals
    |> List.sort (fun a b -> Int.compare a.lo b.lo)
    |> Array.of_list
  in
  fun addr ->
    let rec bsearch l r =
      if l >= r then None
      else
        let m = (l + r) / 2 in
        let iv = arr.(m) in
        if addr < iv.lo then bsearch l m
        else if addr >= iv.hi then bsearch (m + 1) r
        else Some iv
    in
    bsearch 0 (Array.length arr)

(* Walk a recorded baseline trace (however it was produced — a private
   replay or the pipeline's memoized traced run) against the image's
   static policy.  [failure] is the exception that ended the replay, if
   any. *)
let check_trace ~(map : E.Address_map.t) ~(events : E.Trace.event list)
    ~(failure : exn option) (image : C.Image.t) =
  let run_failure =
    match failure with
    | None -> []
    | Some (E.Interp.Aborted msg) ->
      [ Diag.vf ~code:"L007" Diag.Error Diag.Program
          "baseline replay aborted (%s): no trace to check" msg ]
    | Some E.Interp.Fuel_exhausted ->
      [ Diag.v ~code:"L007" Diag.Error Diag.Program
          "baseline replay ran out of fuel: no complete trace to check" ]
    | Some e ->
      [ Diag.vf ~code:"L007" Diag.Error Diag.Program
          "baseline replay failed (%s): no trace to check"
          (Printexc.to_string e) ]
  in
  let find_global = interval_table image map in
  let op_of_entry = Hashtbl.create 8 in
  List.iter
    (fun (op : C.Operation.t) -> Hashtbl.replace op_of_entry op.entry op)
    image.ops;
  Hashtbl.replace op_of_entry image.source.main (C.Image.default_op image);
  let seen = Hashtbl.create 64 in
  let diags = ref (List.rev run_failure) in
  let report key d =
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      diags := d :: !diags
    end
  in
  let stack = ref [] in
  let current () =
    match !stack with op :: _ -> op | [] -> C.Image.default_op image
  in
  let on_access addr write =
    let op = current () in
    let opn = op.C.Operation.name in
    let kind = if write then "write" else "read" in
    if addr >= map.stack_base && addr < map.stack_top then ()
    else
      match find_global addr with
      | Some iv when iv.g_const ->
        if write then
          report
            ("wconst:" ^ opn ^ ":" ^ iv.g_name)
            (Diag.vf ~code:"L007" Diag.Error (Diag.Operation opn)
               "trace writes read-only global %s (at 0x%08X)" iv.g_name addr)
      | Some iv ->
        if not (SS.mem iv.g_name (C.Operation.accessible_globals op)) then
          report
            ("g:" ^ opn ^ ":" ^ iv.g_name)
            (Diag.vf ~code:"L007" Diag.Error (Diag.Operation opn)
               "trace %ss global %s (at 0x%08X) absent from the operation's \
                static resource set: this access would fault under the MPU"
               kind iv.g_name addr)
      | None -> (
        match Peripheral.find image.source.peripherals addr with
        | Some p ->
          let allowed =
            if p.core then
              C.Operation.uses_core_peripheral op p.Peripheral.name
            else C.Operation.uses_peripheral op p.Peripheral.name
          in
          if not allowed then
            report
              ("p:" ^ opn ^ ":" ^ p.Peripheral.name)
              (Diag.vf ~code:"L007" Diag.Error (Diag.Operation opn)
                 "trace %ss peripheral %s (at 0x%08X) absent from the \
                  operation's static resource set"
                 kind p.Peripheral.name addr)
        | None -> (
          match M.Memmap.classify addr with
          | M.Memmap.Code ->
            if write then
              report
                (Printf.sprintf "wflash:%s:0x%X" opn addr)
                (Diag.vf ~code:"L007" Diag.Error (Diag.Operation opn)
                   "trace writes flash at 0x%08X" addr)
          | M.Memmap.Ppb ->
            report
              (Printf.sprintf "ppb:%s:0x%X" opn addr)
              (Diag.vf ~code:"L007" Diag.Warning (Diag.Address addr)
                 "access to the private peripheral bus outside the modeled \
                  datasheet (operation %s)"
                 opn)
          | _ ->
            report
              (Printf.sprintf "unk:%s:0x%X" opn addr)
              (Diag.vf ~code:"L007" Diag.Warning (Diag.Address addr)
                 "%s of an address in no global, stack, or datasheet window \
                  (operation %s)"
                 kind opn)))
  in
  let on_call f =
    match Hashtbl.find_opt op_of_entry f with
    | Some op -> stack := op :: !stack
    | None ->
      let op = current () in
      if not (SS.mem f op.C.Operation.funcs) then
        report
          ("f:" ^ op.C.Operation.name ^ ":" ^ f)
          (Diag.vf ~code:"L007" Diag.Error (Diag.Function f)
             "trace executes this function inside operation %s, which does \
              not contain it"
             op.C.Operation.name)
  in
  let on_return f =
    match !stack with
    | op :: rest when String.equal op.C.Operation.entry f -> stack := rest
    | _ -> ()
  in
  List.iter
    (fun (ev : E.Trace.event) ->
      match ev with
      | E.Trace.Call f | E.Trace.Op_enter f -> on_call f
      | E.Trace.Return f | E.Trace.Op_exit f -> on_return f
      | E.Trace.Access { addr; write } -> on_access addr write)
    events;
  List.rev !diags

(* Replay the mem-traced baseline, running [check] over the stream. *)
let replayed ~devices (image : C.Image.t) check =
  let module Mon = Opec_monitor in
  let r = Mon.Runner.prepare_baseline ~devices ~board:image.board image.source in
  let tr = E.Interp.trace r.b_interp in
  tr.E.Trace.mem <- true;
  tr.E.Trace.enabled <- true;
  let failure =
    match E.Interp.run r.b_interp with
    | () -> None
    | exception (E.Interp.Aborted _ as e) -> Some e
    | exception (E.Interp.Fuel_exhausted as e) -> Some e
  in
  check ~map:r.b_layout.E.Vanilla_layout.map ~events:(E.Trace.events tr)
    ~failure image

let check ?(devices = []) (image : C.Image.t) =
  replayed ~devices image check_trace

(* L011: the sync-schedule soundness oracle.

   Replays the mem-traced baseline and simulates the monitor's
   schedule-driven copies on top of it as value *generations*: every
   observed write bumps its global's generation into the writer's
   shadow; scheduled sync-outs publish the shadow's generation to the
   master; scheduled sync-ins refresh the reader's shadow from the
   master.  A read whose shadow generation differs from the baseline's
   latest is a stale-read hazard — the protected run would observe a
   value the unprotected one would not.  Writes are also checked against
   the static may-write sets, the other half of the schedule's soundness
   argument (a write outside may-write is one no sync-out publishes). *)
let check_sync_trace ~(map : E.Address_map.t) ~(events : E.Trace.event list)
    ~(failure : exn option) (image : C.Image.t) =
  match failure with
  | Some _ -> [] (* L007 already reports the failed replay *)
  | None ->
    let module Ss = A.Syncset in
    let ss = image.syncsets in
    let find_global = interval_table image map in
    let op_of_entry = Hashtbl.create 8 in
    List.iter
      (fun (op : C.Operation.t) -> Hashtbl.replace op_of_entry op.entry op)
      image.ops;
    Hashtbl.replace op_of_entry image.source.main (C.Image.default_op image);
    let seen = Hashtbl.create 64 in
    let diags = ref [] in
    let report key d =
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.replace seen key ();
        diags := d :: !diags
      end
    in
    let stack = ref [] in
    let current () =
      match !stack with op :: _ -> op | [] -> C.Image.default_op image
    in
    (* accessors total over unknown operations, so a stale schedule
       (L009 territory) degrades to empty sets instead of raising *)
    let set f opn = try f ss opn with Invalid_argument _ -> SS.empty in
    let resume ~src ~dst =
      try Ss.resume_set ss ~src ~dst
      with Invalid_argument _ -> set Ss.enter_set dst
    in
    (* generation state: [gen] is the baseline's latest write; [master]
       and [shadow] are what the protected memories would hold *)
    let gen : (string, int) Hashtbl.t = Hashtbl.create 64 in
    let master : (string, int) Hashtbl.t = Hashtbl.create 64 in
    let shadow : (string * string, int) Hashtbl.t = Hashtbl.create 64 in
    let g tbl k = Option.value (Hashtbl.find_opt tbl k) ~default:0 in
    let sync_out opn =
      SS.iter
        (fun v -> Hashtbl.replace master v (g shadow (opn, v)))
        (set Ss.out_set opn)
    in
    let sync_in opn vars =
      SS.iter (fun v -> Hashtbl.replace shadow (opn, v) (g master v)) vars
    in
    let on_access addr write =
      let op = current () in
      let opn = op.C.Operation.name in
      if addr >= map.stack_base && addr < map.stack_top then ()
      else
        match find_global addr with
        | None -> ()
        | Some iv when iv.g_const -> () (* write-to-const is L007 territory *)
        | Some iv ->
          let v = iv.g_name in
          let external_ = C.Layout.is_external image.layout v in
          let slotted = SS.mem v (set Ss.slots_of opn) in
          if write then begin
            if not (SS.mem v (set Ss.may_write opn)) then
              report
                ("w:" ^ opn ^ ":" ^ v)
                (Diag.vf ~code:"L011" Diag.Error (Diag.Operation opn)
                   "observed write to global %s outside the operation's \
                    static may-write set: no sync-out would publish it"
                   v);
            let n = g gen v + 1 in
            Hashtbl.replace gen v n;
            if not external_ then Hashtbl.replace master v n
            else if slotted then Hashtbl.replace shadow (opn, v) n
            (* external but unslotted: the access faults (L007) *)
          end
          else if external_ && slotted then
            if SS.mem v (set Ss.ro_set opn) then begin
              (* read-only master mapping: the protected run reads the
                 master directly, so staleness means a writer's sync-out
                 never reached the public section *)
              if g master v <> g gen v then
                report
                  ("ro:" ^ opn ^ ":" ^ v)
                  (Diag.vf ~code:"L011" Diag.Error (Diag.Operation opn)
                     "stale read of global %s through its read-only master \
                      mapping: a write was never published to the master"
                     v)
            end
            else if g shadow (opn, v) <> g gen v then
              report
                ("r:" ^ opn ^ ":" ^ v)
                (Diag.vf ~code:"L011" Diag.Error (Diag.Operation opn)
                   "stale read of global %s: the shadow misses a write no \
                    scheduled copy delivered"
                   v)
    in
    let on_call f =
      match Hashtbl.find_opt op_of_entry f with
      | Some op ->
        (* the monitor's enter protocol: publish the interrupted
           operation's dirty slots, fill the entered one's enter set *)
        sync_out (current ()).C.Operation.name;
        sync_in op.C.Operation.name (set Ss.enter_set op.C.Operation.name);
        stack := op :: !stack
      | None -> ()
    in
    let on_return f =
      match !stack with
      | op :: rest when String.equal op.C.Operation.entry f ->
        (* the exit protocol: publish the exiting operation, refill the
           resumed one's pair-scheduled resume set *)
        sync_out op.C.Operation.name;
        stack := rest;
        let dst = (current ()).C.Operation.name in
        sync_in dst (resume ~src:op.C.Operation.name ~dst)
      | _ -> ()
    in
    List.iter
      (fun (ev : E.Trace.event) ->
        match ev with
        | E.Trace.Call f | E.Trace.Op_enter f -> on_call f
        | E.Trace.Return f | E.Trace.Op_exit f -> on_return f
        | E.Trace.Access { addr; write } -> on_access addr write)
      events;
    List.rev !diags

let check_sync ?(devices = []) (image : C.Image.t) =
  replayed ~devices image check_sync_trace
