(* Checker registry and linter driver. *)

type world = unit -> Opec_machine.Device.t list

type recorded = {
  map : Opec_exec.Address_map.t;
  events : Opec_exec.Trace.event list;
  failure : exn option;
}

type source = Live of world | Recorded of recorded

type checker = {
  code : string;
  name : string;
  doc : string;
  dynamic : bool;
  run : source option -> Opec_core.Image.t -> Diag.t list;
}

let static name ~code ~doc run =
  { code; name; doc; dynamic = false; run = (fun _source image -> run image) }

let checkers =
  [ static "unresolved-icall" ~code:"L001"
      ~doc:"indirect-call sites the points-to analysis could not resolve"
      Checks.unresolved_icall;
    static "unreachable-function" ~code:"L002"
      ~doc:"functions reachable from no operation entry"
      Checks.unreachable_function;
    static "mpu-plan-validity" ~code:"L003"
      ~doc:
        "protection plan legal under the image's backend and covering its \
         targets"
      Checks.mpu_plan_validity;
    static "resource-coverage" ~code:"L004"
      ~doc:"every member function's resources inside its operation's set"
      Checks.resource_coverage;
    static "over-privilege" ~code:"L005"
      ~doc:"resources granted that no member function needs (PT > 0)"
      Checks.over_privilege;
    static "svc-instrumentation" ~code:"L006"
      ~doc:"operation entries wired through the SVC switch protocol"
      Checks.svc_instrumentation;
    { code = "L007";
      name = "trace-oracle";
      doc = "replayed baseline accesses all statically predicted";
      dynamic = true;
      run =
        (fun source image ->
          match source with
          | Some (Recorded r) ->
            Oracle.check_trace ~map:r.map ~events:r.events ~failure:r.failure
              image
          | Some (Live w) -> Oracle.check ~devices:(w ()) image
          | None -> Oracle.check image) };
    static "layout-consistency" ~code:"L008"
      ~doc:"data sections disjoint, in bounds, and fully addressable"
      Checks.layout_consistency;
    static "sync-schedule" ~code:"L009"
      ~doc:"embedded sync schedule at least as strong as a recomputation"
      Checks.sync_schedule_soundness;
    static "unsyncable-escape" ~code:"L010"
      ~doc:"globals with no static write bound synchronized conservatively"
      Checks.unsyncable_escape;
    { code = "L011";
      name = "stale-read";
      doc = "replayed reads never observe a shadow a scheduled sync missed";
      dynamic = true;
      run =
        (fun source image ->
          match source with
          | Some (Recorded r) ->
            Oracle.check_sync_trace ~map:r.map ~events:r.events
              ~failure:r.failure image
          | Some (Live w) -> Oracle.check_sync ~devices:(w ()) image
          | None -> Oracle.check_sync image) } ]

let find_checker code =
  List.find_opt (fun c -> String.equal c.code code) checkers

let run ?(dynamic = false) ?source image =
  List.concat_map
    (fun c -> if c.dynamic && not dynamic then [] else c.run source image)
    checkers
  |> List.sort Diag.compare

let errors = List.filter Diag.is_error

let render ?(all = false) fmt diags =
  let shown =
    List.filter (fun d -> all || d.Diag.severity <> Diag.Info) diags
  in
  List.iter (fun d -> Format.fprintf fmt "%a@." Diag.pp d) shown;
  let count sev =
    List.length (List.filter (fun d -> d.Diag.severity = sev) diags)
  in
  Format.fprintf fmt "%d error%s, %d warning%s, %d info@."
    (count Diag.Error)
    (if count Diag.Error = 1 then "" else "s")
    (count Diag.Warning)
    (if count Diag.Warning = 1 then "" else "s")
    (count Diag.Info)

let to_json diags =
  "[" ^ String.concat "," (List.map Diag.to_json diags) ^ "]"
