(* Static policy checkers over a compiled image.

   Every checker re-derives the invariant it guards from first
   principles (re-validating region records, re-merging resource sets,
   re-counting instrumentation sites) rather than trusting the
   compiler's own intermediate results — the linter is only worth
   running if it computes the answer a second way. *)

open Opec_ir
module C = Opec_core
module A = Opec_analysis
module M = Opec_machine
module R = A.Resource
module SS = R.SS

type check = C.Image.t -> Diag.t list

(* --- L001: unresolved indirect calls ----------------------------------- *)

let unresolved_icall (image : C.Image.t) =
  let index_in = Hashtbl.create 8 in
  List.concat_map
    (fun (ic : A.Callgraph.icall_info) ->
      let index =
        let i = Option.value (Hashtbl.find_opt index_in ic.site_func) ~default:0 in
        Hashtbl.replace index_in ic.site_func (i + 1);
        i
      in
      let loc = Diag.Icall { func = ic.site_func; index } in
      match ic.resolved_by with
      | `Points_to -> []
      | `Types ->
        [ Diag.vf ~code:"L001" Diag.Warning loc
            "indirect call resolved only by type matching (%d candidate%s); \
             points-to analysis found no targets"
            (List.length ic.targets)
            (if List.length ic.targets = 1 then "" else "s") ]
      | `Unresolved ->
        [ Diag.vf ~code:"L001" Diag.Error loc
            "indirect call has no resolved targets: the call graph is \
             incomplete and the operation's function set may be unsound" ])
    image.callgraph.icalls

(* --- L002: functions outside every operation ---------------------------- *)

let unreachable_function (image : C.Image.t) =
  let covered =
    List.fold_left
      (fun acc (op : C.Operation.t) -> SS.union acc op.funcs)
      SS.empty image.ops
  in
  List.filter_map
    (fun (f : Func.t) ->
      if SS.mem f.name covered then None
      else if f.irq then
        Some
          (Diag.vf ~code:"L002" Diag.Info (Diag.Function f.name)
             "interrupt handler is outside every operation (runs under the \
              default operation's policy)")
      else
        (* info, not warning: applications linking a library (as all the
           bundled workloads do with the shared HAL) legitimately leave
           most of it unreached *)
        Some
          (Diag.vf ~code:"L002" Diag.Info (Diag.Function f.name)
             "function is reachable from no operation entry: dead code the \
              policy does not cover"))
    image.source.funcs

(* --- L003: MPU plan validity -------------------------------------------- *)

(* Re-validate a region record directly (it may have been built without
   going through the checked constructor). *)
let validate_region ~opn ~slot (r : M.Mpu.region) =
  let loc = Diag.Region { op = opn; slot } in
  let size = 1 lsl r.size_log2 in
  let bad =
    if r.size_log2 < M.Mpu.min_size_log2 || r.size_log2 > 32 then
      Some (Printf.sprintf "illegal region size 2^%d" r.size_log2)
    else if r.base land (size - 1) <> 0 then
      Some
        (Printf.sprintf "base 0x%08X not aligned to region size 0x%X" r.base
           size)
    else if r.srd < 0 || r.srd > 0xFF then
      Some (Printf.sprintf "sub-region disable mask 0x%X out of range" r.srd)
    else if r.srd <> 0 && r.size_log2 < M.Mpu.subregion_min_log2 then
      Some
        (Printf.sprintf
           "sub-regions used on a %d-byte region (hardware requires >= 256)"
           size)
    else None
  in
  match bad with
  | Some msg -> [ Diag.v ~code:"L003" Diag.Error loc msg ]
  | None ->
    if r.srd = 0xFF then
      [ Diag.v ~code:"L003" Diag.Warning loc
          "all eight sub-regions disabled: the region never matches" ]
    else []

let region_span (r : M.Mpu.region) = (r.base, r.base + (1 lsl r.size_log2))

(* Is every address of [lo, hi) matched by some region?  Permissions are
   constant over 32-byte chunks (the smallest region and sub-region
   granularity), so probing one address per chunk is exact. *)
let covered regions (lo, hi) =
  let rec go chunk missing =
    if chunk >= hi then missing
    else
      let addr = max lo chunk in
      let hit = List.exists (fun r -> M.Mpu.region_matches r addr) regions in
      go (chunk + 32) (if hit then missing else addr :: missing)
  in
  List.rev (go (lo land lnot 31) [])

let mpu_backend_plan_validity (image : C.Image.t) =
  let fixed_region opn slot build =
    match build () with
    | r -> validate_region ~opn ~slot r
    | exception M.Mpu.Invalid_region msg ->
      [ Diag.vf ~code:"L003" Diag.Error
          (Diag.Region { op = opn; slot })
          "region not constructible: %s" msg ]
  in
  List.concat_map
    (fun (op : C.Operation.t) ->
      let opn = op.name in
      match C.Image.meta_of image opn with
      | None ->
        [ Diag.v ~code:"L003" Diag.Error (Diag.Operation opn)
            "no metadata entry: the monitor cannot switch to this operation" ]
      | Some meta ->
        let code =
          fixed_region opn "code" (fun () ->
              C.Mpu_plan.code_region ~code_base:image.code_base
                ~code_bytes:image.code_bytes)
          @
          match
            C.Mpu_plan.code_region ~code_base:image.code_base
              ~code_bytes:image.code_bytes
          with
          | r ->
            let lo, hi = region_span r in
            if lo > image.code_base || hi < image.code_base + image.code_bytes
            then
              [ Diag.vf ~code:"L003" Diag.Error
                  (Diag.Region { op = opn; slot = "code" })
                  "code region [0x%08X,0x%08X) does not cover the code span \
                   [0x%08X,0x%08X)"
                  lo hi image.code_base
                  (image.code_base + image.code_bytes) ]
            else []
          | exception M.Mpu.Invalid_region _ -> []
        in
        let stack =
          fixed_region opn "stack" (fun () ->
              C.Mpu_plan.stack_region ~stack_base:image.layout.stack_base ())
        in
        let opdata =
          match meta.section with
          | None -> []
          | Some s ->
            fixed_region opn "opdata" (fun () -> C.Mpu_plan.opdata_region s)
            @
            if s.used > 1 lsl s.region_log2 then
              [ Diag.vf ~code:"L003" Diag.Error
                  (Diag.Region { op = opn; slot = "opdata" })
                  "data section uses %d bytes but its region covers only %d"
                  s.used (1 lsl s.region_log2) ]
            else []
        in
        let periphs =
          List.concat
            (List.mapi
               (fun i r ->
                 validate_region ~opn ~slot:(Printf.sprintf "P%d" i) r)
               meta.periph_regions)
        in
        let coverage =
          List.concat_map
            (fun (lo, hi) ->
              match covered meta.periph_regions (lo, hi) with
              | [] -> []
              | addr :: _ ->
                [ Diag.vf ~code:"L003" Diag.Error (Diag.Operation opn)
                    "peripheral range [0x%08X,0x%08X) not covered by the \
                     region plan (first hole at 0x%08X): accesses would fault"
                    lo hi addr ])
            op.periph_ranges
        in
        let budget =
          let n = List.length meta.periph_regions in
          let slots =
            C.Config.peripheral_region_count - if meta.uses_heap then 1 else 0
          in
          if n > slots then
            [ Diag.vf ~code:"L003" Diag.Info (Diag.Operation opn)
                "%d peripheral regions exceed the %d available slots; the \
                 overflow is virtualized by the monitor at runtime"
                n slots ]
          else []
        in
        code @ stack @ opdata @ periphs @ coverage @ budget)
    image.ops

(* Non-MPU backends: re-validate the plan against the backend's own
   constraint descriptor — data-section fit and alignment (granule or
   bounds representability), peripheral coverage, and the entry or key
   budget under the backend's fault model (PMP entry rotation vs POE key
   recycling; CHERI has no budget at all). *)
let backend_plan_validity (image : C.Image.t) =
  let kind = image.backend in
  let desc = M.Backend.descriptor kind in
  let kname = M.Backend.kind_name kind in
  let aligned ~base ~len =
    match desc.M.Backend.d_alignment with
    | M.Backend.Pow2 { min_log2 } -> base land ((1 lsl min_log2) - 1) = 0
    | M.Backend.Granule { bytes } -> base mod bytes = 0
    | M.Backend.Precision _ -> M.Cheri.representable ~base ~len
  in
  List.concat_map
    (fun (op : C.Operation.t) ->
      let opn = op.name in
      match C.Image.meta_of image opn with
      | None ->
        [ Diag.v ~code:"L003" Diag.Error (Diag.Operation opn)
            "no metadata entry: the monitor cannot switch to this operation" ]
      | Some meta ->
        let opdata =
          match meta.C.Metadata.section with
          | None -> []
          | Some s ->
            (if s.C.Layout.used > s.C.Layout.span then
               [ Diag.vf ~code:"L003" Diag.Error
                   (Diag.Region { op = opn; slot = "opdata" })
                   "data section uses %d bytes but its %s window reserves \
                    only %d"
                   s.C.Layout.used kname s.C.Layout.span ]
             else [])
            @
            if not (aligned ~base:s.C.Layout.base ~len:s.C.Layout.span) then
              [ Diag.vf ~code:"L003" Diag.Error
                  (Diag.Region { op = opn; slot = "opdata" })
                  "data section base 0x%08X violates the %s alignment rule"
                  s.C.Layout.base kname ]
            else []
        in
        let coverage =
          List.concat_map
            (fun (lo, hi) ->
              match covered meta.C.Metadata.periph_regions (lo, hi) with
              | [] -> []
              | addr :: _ ->
                [ Diag.vf ~code:"L003" Diag.Error (Diag.Operation opn)
                    "peripheral range [0x%08X,0x%08X) not covered by the \
                     window plan (first hole at 0x%08X): accesses would fault"
                    lo hi addr ])
            op.periph_ranges
        in
        let budget =
          let n = List.length meta.C.Metadata.periph_regions in
          match kind with
          | M.Backend.Mpu | M.Backend.Cheri -> []
          | M.Backend.Pmp ->
            let slots =
              C.Backend_plan.pmp_periph_capacity
                ~has_section:(meta.C.Metadata.section <> None)
                ~has_heap:meta.C.Metadata.uses_heap
            in
            if n > slots then
              [ Diag.vf ~code:"L003" Diag.Info (Diag.Operation opn)
                  "%d peripheral windows exceed the %d available PMP \
                   entries; the overflow is virtualized by the monitor at \
                   runtime"
                  n slots ]
            else []
          | M.Backend.Poe ->
            let keys =
              C.Backend_plan.poe_recycle_count
                ~has_heap:meta.C.Metadata.uses_heap
            in
            if n > keys then
              [ Diag.vf ~code:"L003" Diag.Info (Diag.Operation opn)
                  "%d peripheral windows exceed the %d free POE keys; the \
                   monitor recycles keys onto keyless windows at runtime"
                  n keys ]
            else []
        in
        opdata @ coverage @ budget)
    image.ops

let mpu_plan_validity (image : C.Image.t) =
  match image.backend with
  | M.Backend.Mpu -> mpu_backend_plan_validity image
  | M.Backend.Pmp | M.Backend.Cheri | M.Backend.Poe ->
    backend_plan_validity image

(* --- L004: resource-coverage soundness ---------------------------------- *)

let missing_from ~granted needed = SS.diff needed granted

let names s = String.concat ", " (SS.elements s)

let resource_coverage (image : C.Image.t) =
  List.concat_map
    (fun (op : C.Operation.t) ->
      let granted = op.resources in
      SS.fold
        (fun f acc ->
          let r = R.of_func image.resources f in
          let check what needed granted_set =
            let miss = missing_from ~granted:granted_set needed in
            if SS.is_empty miss then []
            else
              [ Diag.vf ~code:"L004" Diag.Error (Diag.Operation op.name)
                  "member function %s needs %s {%s} missing from the \
                   operation's resource set: accesses would fault at runtime"
                  f what (names miss) ]
          in
          check "global(s)" (R.globals r) (R.globals granted)
          @ check "peripheral(s)" r.peripherals granted.peripherals
          @ check "core peripheral(s)" r.core_peripherals
              granted.core_peripherals
          @ acc)
        op.funcs [])
    image.ops

(* --- L005: over-privilege ------------------------------------------------ *)

let over_privilege (image : C.Image.t) =
  let static =
    List.concat_map
      (fun (op : C.Operation.t) ->
        let needed = R.of_funcs image.resources op.funcs in
        let check what granted_set needed_set =
          let extra = SS.diff granted_set needed_set in
          if SS.is_empty extra then []
          else
            [ Diag.vf ~code:"L005" Diag.Error (Diag.Operation op.name)
                "operation is granted %s {%s} that no member function needs"
                what (names extra) ]
        in
        check "global(s)" (R.globals op.resources) (R.globals needed)
        @ check "peripheral(s)" op.resources.peripherals needed.peripherals
        @ check "core peripheral(s)" op.resources.core_peripherals
            needed.core_peripherals)
      image.ops
  in
  let pt =
    List.filter_map
      (fun (s : Opec_metrics.Overprivilege.pt_sample) ->
        if s.pt > 0.0 then
          Some
            (Diag.vf ~code:"L005" Diag.Error (Diag.Operation s.domain)
               "partition-time over-privilege is %.3f (OPEC must be 0 by \
                construction: the data section holds unneeded writable bytes)"
               s.pt)
        else None)
      (Opec_metrics.Overprivilege.opec_pt image)
  in
  static @ pt

(* --- L006: SVC instrumentation ------------------------------------------- *)

let svc_instrumentation (image : C.Image.t) =
  let entry_set = SS.of_list image.entries in
  let ops_not_listed =
    List.filter_map
      (fun (op : C.Operation.t) ->
        if op.index = 0 || SS.mem op.entry entry_set then None
        else
          Some
            (Diag.vf ~code:"L006" Diag.Error (Diag.Operation op.name)
               "entry %s is not in the image's entry list: calls to it will \
                not go through the SVC switch protocol"
               op.entry))
      image.ops
  in
  let entries_valid =
    List.concat_map
      (fun e ->
        let loc = Diag.Function e in
        let op_known =
          match C.Image.op_of_entry image e with
          | Some _ -> []
          | None ->
            [ Diag.v ~code:"L006" Diag.Error loc
                "listed as an operation entry but no operation has this \
                 entry: the monitor would switch to nothing" ]
        in
        let shape =
          match Program.find_func image.program e with
          | None ->
            [ Diag.v ~code:"L006" Diag.Error loc
                "listed as an operation entry but not defined in the image" ]
          | Some f ->
            (if f.irq then
               [ Diag.v ~code:"L006" Diag.Error loc
                   "interrupt handler listed as an operation entry" ]
             else [])
            @
            if f.varargs then
              [ Diag.v ~code:"L006" Diag.Error loc
                  "variadic function listed as an operation entry (argument \
                   relocation is undefined)" ]
            else []
        in
        op_known @ shape)
      image.entries
  in
  let stray_svc =
    List.concat_map
      (fun (f : Func.t) ->
        Instr.fold_block
          (fun acc i ->
            match i with
            | Instr.Svc n when n <> Opec_monitor.Threads.yield_svc ->
              Diag.vf ~code:"L006" Diag.Error (Diag.Function f.name)
                "raw SVC #%d in instrumented code bypasses the monitor's \
                 switch protocol"
                n
              :: acc
            | _ -> acc)
          [] f.body)
      image.program.funcs
  in
  let recount =
    let counted = C.Instrument.count_svc_sites image.source image.entries in
    if counted <> image.stats.svc_sites then
      [ Diag.vf ~code:"L006" Diag.Warning Diag.Program
          "image records %d SVC sites but a recount finds %d"
          image.stats.svc_sites counted ]
    else []
  in
  ops_not_listed @ entries_valid @ stray_svc @ recount

(* --- L009: sync-schedule soundness --------------------------------------- *)

(* Recompute the sync schedule from the image's analysis artifacts and
   demand the embedded one is at least as strong: every slot the fresh
   computation would copy must be scheduled, and nothing scheduled may
   fall outside the operation's slot domain.  A weaker embedded schedule
   means a switch could skip a needed copy (stale shadow or lost master
   update); an out-of-domain entry would have the monitor copy a slot
   the operation has no region for. *)
let sync_schedule_soundness (image : C.Image.t) =
  let module Ss = A.Syncset in
  let emb = image.syncsets in
  let fresh =
    C.Compiler.syncsets_of ~points_to:image.points_to
      ~callgraph:image.callgraph ~ops:image.ops ~input:image.input
      image.source
  in
  let conservative =
    if A.Dataflow.has_svc image.source && not (Ss.conservative_resume emb)
    then
      [ Diag.v ~code:"L009" Diag.Error Diag.Program
          "program contains raw SVC yields but the embedded schedule \
           carries per-pair resume sets: a thread switch could resume \
           with stale shadows" ]
    else []
  in
  let per_op (op : C.Operation.t) =
    let opn = op.name in
    let loc = Diag.Operation opn in
    match Ss.slots_of emb opn with
    | exception Invalid_argument _ ->
      [ Diag.v ~code:"L009" Diag.Error loc
          "operation has no embedded sync schedule: the monitor cannot \
           switch to it incrementally" ]
    | _emb_slots ->
      let domain = Ss.slots_of fresh opn in
      let check_cover what needed scheduled =
        let miss = SS.diff needed scheduled in
        if SS.is_empty miss then []
        else
          [ Diag.vf ~code:"L009" Diag.Error loc
              "%s set misses slot(s) {%s} the dataflow analysis requires: \
               a switch would skip a needed copy"
              what (names miss) ]
      in
      let check_domain what scheduled =
        let extra = SS.diff scheduled domain in
        if SS.is_empty extra then []
        else
          [ Diag.vf ~code:"L009" Diag.Error loc
              "%s set schedules {%s} outside the operation's shadow-slot \
               domain: the monitor would copy through a slot that does \
               not exist"
              what (names extra) ]
      in
      let check_ro () =
        (* the read-only master mapping is an exemption, not a copy: the
           embedded set must stay within what the fresh analysis can
           prove write-free, or a mapped slot could hide a write *)
        let extra = SS.diff (Ss.ro_set emb opn) (Ss.ro_set fresh opn) in
        if SS.is_empty extra then []
        else
          [ Diag.vf ~code:"L009" Diag.Error loc
              "read-only master mapping covers slot(s) {%s} the dataflow \
               analysis cannot prove write-free: a write through the \
               mapping would bypass synchronization"
              (names extra) ]
      in
      check_cover "sync-out" (Ss.out_set fresh opn) (Ss.out_set emb opn)
      @ check_cover "enter sync-in" (Ss.enter_set fresh opn)
          (Ss.enter_set emb opn)
      @ check_domain "sync-out" (Ss.out_set emb opn)
      @ check_domain "enter sync-in" (Ss.enter_set emb opn)
      @ check_ro ()
      @ check_domain "read-only mapping" (Ss.ro_set emb opn)
      @
      (* resume_set falls back to the (larger) enter set for unknown
         pairs and under conservative scheduling, which is always
         sound; only explicit pairs can under-copy. *)
      List.concat_map
        (fun (src, dst) ->
          if not (String.equal dst opn) then []
          else
            check_cover
              (Printf.sprintf "resume (%s -> %s)" src dst)
              (Ss.resume_set fresh ~src ~dst)
              (Ss.resume_set emb ~src ~dst)
            @ check_domain
                (Printf.sprintf "resume (%s -> %s)" src dst)
                (Ss.resume_set emb ~src ~dst))
        (Ss.pairs fresh)
  in
  conservative @ List.concat_map per_op image.ops

(* --- L010: unsyncable escape --------------------------------------------- *)

(* A global whose address was stored into a peripheral window can be
   written by the device at any time: no static may-write bound exists.
   The schedule must treat it conservatively — copied at every switch
   where a slot exists — and the developer should know the variable
   defeats incremental synchronization. *)
let unsyncable_escape (image : C.Image.t) =
  let module Ss = A.Syncset in
  let emb = image.syncsets in
  let slots opn =
    try Ss.slots_of emb opn with Invalid_argument _ -> SS.empty
  in
  let escaped = A.Dataflow.escaped_globals image.source image.points_to in
  SS.fold
    (fun g acc ->
      let warn =
        Diag.vf ~code:"L010" Diag.Warning Diag.Program
          "address of global %s escapes into a peripheral window: its \
           writers cannot be statically bounded, so every operation \
           holding a slot falls back to synchronizing it at each switch"
          g
      in
      let holes =
        List.concat_map
          (fun (op : C.Operation.t) ->
            let opn = op.name in
            if not (SS.mem g (slots opn)) then []
            else
              let missing what set =
                if SS.mem g set then []
                else
                  [ Diag.vf ~code:"L010" Diag.Error (Diag.Operation opn)
                      "escaped global %s missing from the %s set: a \
                       device-initiated write could be lost or observed \
                       stale"
                      g what ]
              in
              missing "sync-out" (Ss.out_set emb opn)
              @ missing "enter sync-in" (Ss.enter_set emb opn)
              @ List.concat_map
                  (fun (src, dst) ->
                    if String.equal dst opn then
                      missing
                        (Printf.sprintf "resume (%s -> %s)" src dst)
                        (Ss.resume_set emb ~src ~dst)
                    else [])
                  (Ss.pairs emb))
          image.ops
      in
      (warn :: holes) @ acc)
    escaped []

(* --- L008: layout consistency ------------------------------------------- *)

let layout_consistency (image : C.Image.t) =
  let l = image.layout in
  (* MPU-aligned sections own their full region span; the public section
     is privileged-only and owns just its used bytes. *)
  let span ~aligned (s : C.Layout.section) =
    (s.base, s.base + (if aligned then 1 lsl s.region_log2 else max s.used 4))
  in
  let sections =
    (("public", span ~aligned:false l.public)
    :: List.map (fun (n, s) -> (n, span ~aligned:true s)) l.op_sections)
    @ (match l.heap_section with
      | Some h -> [ ("heap", span ~aligned:true h) ]
      | None -> [])
    @ [ ("stack", (l.stack_base, l.stack_top)) ]
  in
  let bounds =
    List.concat_map
      (fun (n, (lo, hi)) ->
        if lo < l.data_base || hi > l.data_limit then
          [ Diag.vf ~code:"L008" Diag.Error (Diag.Operation n)
              "section [0x%08X,0x%08X) escapes the SRAM data window \
               [0x%08X,0x%08X)"
              lo hi l.data_base l.data_limit ]
        else [])
      sections
  in
  let rec overlaps = function
    | [] -> []
    | (n1, (lo1, hi1)) :: rest ->
      List.concat_map
        (fun (n2, (lo2, hi2)) ->
          if lo1 < hi2 && lo2 < hi1 then
            [ Diag.vf ~code:"L008" Diag.Error (Diag.Operation n1)
                "section [0x%08X,0x%08X) overlaps section %s \
                 [0x%08X,0x%08X): one operation could reach another's data"
                lo1 hi1 n2 lo2 hi2 ]
          else [])
        rest
      @ overlaps rest
  in
  let fit =
    List.concat_map
      (fun (n, (s : C.Layout.section)) ->
        if s.used > 1 lsl s.region_log2 then
          [ Diag.vf ~code:"L008" Diag.Error (Diag.Operation n)
              "section packs %d bytes into a 2^%d-byte MPU region" s.used
              s.region_log2 ]
        else [])
      l.op_sections
  in
  let globals = Program.global_map image.source in
  let addressing =
    List.concat_map
      (fun (op : C.Operation.t) ->
        SS.fold
          (fun g acc ->
            match Program.String_map.find_opt g globals with
            | None -> acc (* L004 territory: not a program global *)
            | Some gl when gl.const || gl.heap -> acc
            | Some _ ->
              let need what = function
                | Some _ -> []
                | None ->
                  [ Diag.vf ~code:"L008" Diag.Error (Diag.Operation op.name)
                      "accessible global %s has no %s: instrumentation \
                       cannot address it"
                      g what ]
              in
              (if C.Layout.is_external l g then
                 need "shadow slot" (C.Layout.shadow_of l ~op:op.name ~var:g)
                 @ need "relocation slot" (C.Layout.reloc_slot l g)
                 @ need "master address" (C.Layout.master_of l g)
               else need "home address" (C.Layout.master_of l g))
              @ acc)
          (C.Operation.accessible_globals op)
          [])
      image.ops
  in
  bounds @ overlaps sections @ fit @ addressing
