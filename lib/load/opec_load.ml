(** Load-generator scenario suite: traffic-shaped drivers ({!Scenario})
    measuring operation-switch tail latency per enforcement backend. *)

module Scenario = Scenario
