(** Traffic-driven load scenarios: server-shaped drivers pushing
    sustained event streams through a protected image, reporting the
    operation-switch latency distribution (mean / p50 / p99 / p999)
    per enforcement backend.  Telemetry streams into an
    {!Opec_obs.Agg}, so memory stays constant at any event count. *)

type kind =
  | Request_storm     (** request/response stream, one op crossing each *)
  | Sensor_burst      (** sample bursts with a flush op at boundaries *)
  | Interrupt_preempt (** preemptive thread switches between two ops *)
  | Tcp_echo_slice    (** the bundled TCP-Echo app under scaled traffic *)

val all : kind list
val name : kind -> string
val of_name : string -> kind option

type result = {
  r_scenario : string;
  r_backend : string;
  r_stimuli : int;        (** injected requests / samples / yields / frames *)
  r_telemetry : int;      (** monitor telemetry events consumed by the sink *)
  r_events : int;         (** stimuli + telemetry: the run's event total *)
  r_switch_spans : int;
  r_cycles : int64;       (** guest cycles executed *)
  r_wall_s : float;
  r_p50 : int64;
  r_p99 : int64;
  r_p999 : int64;
  r_max : int64;
  r_mean : float;
  r_check : (unit, string) Stdlib.result;  (** end-to-end output check *)
}

(** Run one scenario.  A pilot run calibrates events-per-stimulus, then
    the full run is sized to [target_events] (default 100k; ignored by
    [Tcp_echo_slice], which drives a fixed 500-frame slice).  The
    device scripts are deterministic: same scenario, backend, and
    target produce identical event streams and cycle counts. *)
val run :
  ?backend:Opec_machine.Backend.kind -> ?target_events:int -> kind -> result

val pp_result : Format.formatter -> result -> unit

(** One-line JSON object for [bench load] / [opec load --json]. *)
val result_json : result -> string
