(* Traffic-driven load scenarios: server-shaped drivers that push
   sustained event streams through a protected image and report the
   operation-switch latency distribution per enforcement backend.

   Each scenario is the software half of a test harness: a scripted
   device model stands in for the outside world (a TCP client, a
   sensor, an interrupt source), the firmware half is an ordinary IR
   program whose operation entries are crossed once per stimulus, and
   the telemetry sink streams into an {!Opec_obs.Agg} so memory stays
   constant no matter how many events a run drives. *)

open Opec_ir
open Build
module E = Expr
module M = Opec_machine
module C = Opec_core
module Mon = Opec_monitor
module Ex = Opec_exec
module Obs = Opec_obs
module Apps = Opec_apps

type kind =
  | Request_storm     (* request/response stream, one op crossing each *)
  | Sensor_burst      (* bursts of samples with a flush op at boundaries *)
  | Interrupt_preempt (* preemptive thread switches between two operations *)
  | Tcp_echo_slice    (* the bundled TCP-Echo app under scaled traffic *)

let all = [ Request_storm; Sensor_burst; Interrupt_preempt; Tcp_echo_slice ]

let name = function
  | Request_storm -> "request-storm"
  | Sensor_burst -> "sensor-burst"
  | Interrupt_preempt -> "interrupt-preempt"
  | Tcp_echo_slice -> "tcp-echo-slice"

let of_name s = List.find_opt (fun k -> name k = s) all

type result = {
  r_scenario : string;
  r_backend : string;
  r_stimuli : int;        (** injected requests / samples / yields / frames *)
  r_telemetry : int;      (** monitor telemetry events consumed by the sink *)
  r_events : int;         (** stimuli + telemetry: the run's event total *)
  r_switch_spans : int;
  r_cycles : int64;       (** guest cycles executed *)
  r_wall_s : float;
  r_p50 : int64;
  r_p99 : int64;
  r_p999 : int64;
  r_max : int64;
  r_mean : float;
  r_check : (unit, string) Stdlib.result;
}

let finish ~kind ~backend ~stimuli ~cycles ~wall ~check (agg : Obs.Agg.t) =
  let h = agg.Obs.Agg.all_latency in
  let telemetry = Obs.Agg.event_count agg in
  { r_scenario = name kind;
    r_backend = M.Backend.kind_name backend;
    r_stimuli = stimuli;
    r_telemetry = telemetry;
    r_events = stimuli + telemetry;
    r_switch_spans = agg.Obs.Agg.switch_spans;
    r_cycles = cycles;
    r_wall_s = wall;
    r_p50 = Obs.Agg.hist_percentile h 0.5;
    r_p99 = Obs.Agg.hist_percentile h 0.99;
    r_p999 = Obs.Agg.hist_percentile h 0.999;
    r_max = (if h.Obs.Agg.samples = 0 then 0L else h.Obs.Agg.max);
    r_mean = Obs.Agg.hist_mean h;
    r_check = check }

(* --- request-storm ------------------------------------------------------ *)

(* A request generator register window: AVAIL at +0, POP at +4 (reads
   consume one request), RESP at +8 (writes acknowledge one).  The
   firmware polls AVAIL from the default operation and crosses into the
   [serve_request] operation once per request — every request is one
   Enter and one Exit switch. *)
let request_storm ?backend requests =
  let base = 0x4000_0000 and size = 0x400 in
  let periph = Peripheral.v "REQGEN" ~base ~size in
  let remaining = ref requests in
  let cursor = ref 0 in
  let responses = ref 0 in
  let dev =
    M.Device.v "REQGEN" ~base ~size
      ~read:(fun off _w ->
        match off with
        | 0 -> if !remaining > 0 then 1L else 0L
        | 4 ->
          if !remaining > 0 then begin
            decr remaining;
            incr cursor
          end;
          Int64.of_int (!cursor land 0xff)
        | _ -> 0L)
      ~write:(fun off _w _v -> if off = 8 then incr responses)
  in
  let program =
    Program.v ~name:"load-request-storm"
      ~globals:
        [ word "handled"; word "total" ~init:(Int64.of_int requests) ]
      ~peripherals:[ periph ]
      ~funcs:
        [ func "serve_request" [ pw "v" ] ~file:"server.c"
            [ store (reg periph 8) E.(l "v" + c 1);
              load "n" (gv "handled");
              store (gv "handled") E.(l "n" + c 1);
              ret0 ];
          func "main" [] ~file:"main.c"
            [ load "want" (gv "total");
              set "done_" (c 0);
              while_
                E.(l "done_" < l "want")
                [ load "avail" (reg periph 0);
                  if_
                    E.(l "avail" != c 0)
                    [ load "v" (reg periph 4);
                      call "serve_request" [ l "v" ];
                      set "done_" E.(l "done_" + c 1) ]
                    [] ];
              (* read the op's tally from the default operation so
                 [handled] is shared and every switch does sync work *)
              load "h" (gv "handled");
              store (gv "total") (l "h");
              halt ] ]
      ()
  in
  let image =
    C.Compiler.compile ?backend program (C.Dev_input.v [ "serve_request" ])
  in
  let agg = Obs.Agg.create () in
  let t0 = Unix.gettimeofday () in
  let run =
    Mon.Runner.run_protected ~devices:[ dev ]
      ~sink:(Obs.Sink.make (Obs.Agg.add agg))
      image
  in
  let wall = Unix.gettimeofday () -. t0 in
  let check =
    if !responses = requests then Ok ()
    else
      Error
        (Printf.sprintf "acknowledged %d of %d requests" !responses requests)
  in
  (requests, agg, Ex.Interp.cycles run.Mon.Runner.interp, wall, check)

(* --- sensor-burst ------------------------------------------------------- *)

(* A sensor that produces bursts of samples: NEXT at +0 reports status
   (2 = sample ready, 1 = burst boundary / flush needed, 0 = done),
   DATA at +4 pops one sample, OUT at +8 takes the flushed
   accumulator.  The firmware alternates two operations —
   [sense_sample] per sample and [flush_buffer] at burst boundaries —
   so the switch matrix sees both op-to-op directions under storm
   pressure. *)
let sensor_burst ?backend ~burst_len bursts =
  let base = 0x4000_0400 and size = 0x400 in
  let periph = Peripheral.v "SENSOR" ~base ~size in
  let bursts_left = ref bursts in
  let cur = ref 0 in
  let flush_pending = ref false in
  let seq = ref 0 in
  let host_sum = ref 0L in
  let flushes = ref 0 in
  let mismatches = ref 0 in
  let dev =
    M.Device.v "SENSOR" ~base ~size
      ~read:(fun off _w ->
        match off with
        | 0 ->
          if !cur > 0 then 2L
          else if !flush_pending then 1L
          else if !bursts_left > 0 then begin
            decr bursts_left;
            cur := burst_len;
            2L
          end
          else 0L
        | 4 ->
          if !cur > 0 then begin
            decr cur;
            incr seq;
            if !cur = 0 then flush_pending := true
          end;
          let v = Int64.of_int (!seq land 0xff) in
          host_sum := Int64.add !host_sum v;
          v
        | _ -> 0L)
      ~write:(fun off _w v ->
        if off = 8 then begin
          flush_pending := false;
          incr flushes;
          if v <> !host_sum then incr mismatches;
          host_sum := 0L
        end)
  in
  let program =
    Program.v ~name:"load-sensor-burst"
      ~globals:[ word "acc"; word "nflush" ]
      ~peripherals:[ periph ]
      ~funcs:
        [ func "sense_sample" [ pw "v" ] ~file:"sensor.c"
            [ load "a" (gv "acc");
              store (gv "acc") E.(l "a" + l "v");
              ret0 ];
          func "flush_buffer" [] ~file:"sensor.c"
            [ load "a" (gv "acc");
              store (reg periph 8) (l "a");
              store (gv "acc") (c 0);
              load "k" (gv "nflush");
              store (gv "nflush") E.(l "k" + c 1);
              ret0 ];
          func "main" [] ~file:"main.c"
            [ set "go" (c 1);
              while_
                E.(l "go" != c 0)
                [ load "s" (reg periph 0);
                  if_
                    E.(l "s" == c 2)
                    [ load "v" (reg periph 4);
                      call "sense_sample" [ l "v" ] ]
                    [ if_
                        E.(l "s" == c 1)
                        [ call "flush_buffer" [] ]
                        [ set "go" (c 0) ] ] ];
              halt ] ]
      ()
  in
  let image =
    C.Compiler.compile ?backend program
      (C.Dev_input.v [ "sense_sample"; "flush_buffer" ])
  in
  let agg = Obs.Agg.create () in
  let t0 = Unix.gettimeofday () in
  let run =
    Mon.Runner.run_protected ~devices:[ dev ]
      ~sink:(Obs.Sink.make (Obs.Agg.add agg))
      image
  in
  let wall = Unix.gettimeofday () -. t0 in
  let stimuli = (bursts * burst_len) + !flushes in
  let check =
    if !flushes <> bursts then
      Error (Printf.sprintf "flushed %d of %d bursts" !flushes bursts)
    else if !mismatches > 0 then
      Error (Printf.sprintf "%d flush sums wrong" !mismatches)
    else Ok ()
  in
  (stimuli, agg, Ex.Interp.cycles run.Mon.Runner.interp, wall, check)

(* --- interrupt-preempt -------------------------------------------------- *)

(* Two operation threads ticking a shared counter and yielding after
   every tick — the cooperative stand-in for interrupt-driven
   preemption.  Every yield is a full monitor context switch (shadow
   write-back + sync + MPU reconfiguration), so the Thread spans
   dominate the latency histogram. *)
let interrupt_preempt ?backend rounds =
  let worker which ticks =
    func which [] ~file:"app.c"
      (for_ "i" (c rounds)
         [ load "n" (gv "shared");
           store (gv "shared") E.(l "n" + c 1);
           load "t" (gv ticks);
           store (gv ticks) E.(l "t" + c 1);
           Instr.Svc Mon.Threads.yield_svc ]
      @ [ ret0 ])
  in
  let program =
    Program.v ~name:"load-interrupt-preempt"
      ~globals:[ word "shared"; word "ticks_a"; word "ticks_b" ]
      ~peripherals:[]
      ~funcs:
        [ worker "worker_a" "ticks_a";
          worker "worker_b" "ticks_b";
          func "main" [] ~file:"main.c" [ halt ] ]
      ()
  in
  let image =
    C.Compiler.compile ?backend program
      (C.Dev_input.v [ "worker_a"; "worker_b" ])
  in
  let agg = Obs.Agg.create () in
  let t0 = Unix.gettimeofday () in
  let run =
    Mon.Runner.prepare ~sink:(Obs.Sink.make (Obs.Agg.add agg)) image
  in
  let cpu = run.Mon.Runner.bus.M.Bus.cpu in
  cpu.M.Cpu.sp <- image.C.Image.map.Ex.Address_map.stack_top;
  cpu.M.Cpu.stack_base <- image.C.Image.map.Ex.Address_map.stack_base;
  cpu.M.Cpu.stack_limit <- image.C.Image.map.Ex.Address_map.stack_top;
  Mon.Monitor.init run.Mon.Runner.monitor;
  let sched = Mon.Threads.create run in
  ignore (Mon.Threads.spawn sched ~entry:"worker_a" ~args:[] ~stack_bytes:1024);
  ignore (Mon.Threads.spawn sched ~entry:"worker_b" ~args:[] ~stack_bytes:1024);
  Mon.Threads.run sched;
  let wall = Unix.gettimeofday () -. t0 in
  let shared =
    M.Bus.read_raw run.Mon.Runner.bus
      (image.C.Image.map.Ex.Address_map.global_addr "shared")
      4
  in
  let stimuli = 2 * rounds in
  let check =
    if Int64.to_int shared <> stimuli then
      Error
        (Printf.sprintf "shared counter %Ld after %d ticks" shared stimuli)
    else if Mon.Threads.context_switches sched < stimuli then
      Error
        (Printf.sprintf "only %d context switches for %d yields"
           (Mon.Threads.context_switches sched)
           stimuli)
    else Ok ()
  in
  (stimuli, agg, Ex.Interp.cycles run.Mon.Runner.interp, wall, check)

(* --- tcp-echo-slice ----------------------------------------------------- *)

(* The bundled TCP-Echo application under a scaled traffic script: the
   full lwIP-shaped RX path (checksum, demux, connection lookup) runs
   per frame, so per-event cost is far higher than the synthetic
   storms — the slice stays small and measures the realistic app
   shape, not throughput. *)
let tcp_echo_slice ?backend frames =
  let valid = max 1 (frames / 10) in
  let invalid = frames - valid in
  let app = Apps.Registry.tcp_echo ~valid ~invalid () in
  let image =
    C.Compiler.compile ~board:app.Apps.App.board ?backend
      app.Apps.App.program app.Apps.App.dev_input
  in
  let world = app.Apps.App.make_world () in
  world.Apps.App.prepare ();
  let agg = Obs.Agg.create () in
  let t0 = Unix.gettimeofday () in
  let run =
    Mon.Runner.run_protected ~devices:world.Apps.App.devices
      ~sink:(Obs.Sink.make (Obs.Agg.add agg))
      image
  in
  let wall = Unix.gettimeofday () -. t0 in
  (frames, agg, Ex.Interp.cycles run.Mon.Runner.interp, wall,
   world.Apps.App.check ())

(* --- sizing and the driver ---------------------------------------------- *)

(* Pilot a small run, measure events per stimulus, then size the full
   run to the event target.  Device scripts are deterministic, so the
   ratio transfers exactly up to the constant startup term. *)
let pilot_stimuli = 128

let run ?(backend = M.Backend.Mpu) ?(target_events = 100_000) kind =
  let backend_arg = Some backend in
  let measure n =
    match kind with
    | Request_storm -> request_storm ?backend:backend_arg n
    | Sensor_burst ->
      (* 15 samples then a flush: bursts carry 16 stimuli each *)
      let bursts = max 1 ((n + 15) / 16) in
      sensor_burst ?backend:backend_arg ~burst_len:15 bursts
    | Interrupt_preempt ->
      interrupt_preempt ?backend:backend_arg (max 1 (n / 2))
    | Tcp_echo_slice -> tcp_echo_slice ?backend:backend_arg n
  in
  let stimuli =
    match kind with
    | Tcp_echo_slice ->
      (* fixed slice: the app's cost per frame makes event targets in
         the millions impractical, and the point is shape, not rate *)
      500
    | _ ->
      let p_stim, p_agg, _, _, _ = measure pilot_stimuli in
      let per =
        float_of_int (p_stim + Obs.Agg.event_count p_agg)
        /. float_of_int (max 1 p_stim)
      in
      int_of_float (ceil (float_of_int target_events /. per))
  in
  let stimuli, agg, cycles, wall, check = measure stimuli in
  finish ~kind ~backend ~stimuli ~cycles ~wall ~check agg

let pp_result f r =
  Format.fprintf f
    "@[<v>%s [%s]: %d events (%d stimuli + %d telemetry) in %.2fs, %Ld cycles@,\
     switch latency: %d spans, mean %.1f, p50 %Ld, p99 %Ld, p999 %Ld, max %Ld@,\
     check: %s@]"
    r.r_scenario r.r_backend r.r_events r.r_stimuli r.r_telemetry r.r_wall_s
    r.r_cycles r.r_switch_spans r.r_mean r.r_p50 r.r_p99 r.r_p999 r.r_max
    (match r.r_check with Ok () -> "ok" | Error e -> e)

(* JSON emission shared by [bench load] and [opec load --json]. *)
let result_json r =
  Printf.sprintf
    {|{"scenario": "%s", "backend": "%s", "events": %d, "stimuli": %d, "telemetry": %d, "switch_spans": %d, "cycles": %Ld, "wall_s": %.3f, "mean": %.1f, "p50": %Ld, "p99": %Ld, "p999": %Ld, "max": %Ld, "check": "%s"}|}
    r.r_scenario r.r_backend r.r_events r.r_stimuli r.r_telemetry
    r.r_switch_spans r.r_cycles r.r_wall_s r.r_mean r.r_p50 r.r_p99 r.r_p999
    r.r_max
    (match r.r_check with Ok () -> "ok" | Error e -> e)
