(* Execution trace at function granularity.

   This replaces the paper's GDB single-stepping (Section 6.4): the
   interpreter records call/return events natively, and the metrics layer
   segments them into tasks to compute the execution-time over-privilege
   value. *)

type event =
  | Call of string          (** function entered *)
  | Return of string        (** function returned *)
  | Op_enter of string      (** operation switch: entering entry function *)
  | Op_exit of string       (** operation switch: leaving entry function *)
  | Access of { addr : int; write : bool }
      (** one MPU-visible memory access (recorded only when {!t.mem} is set) *)

(* Events are consed in reverse; [fwd_cache] memoizes the reversed
   (execution-order) view so repeated consumers (the lint oracle, trace
   segmentation) stop paying an O(n) copy per query.  Any mutation of
   [rev_events] must go through {!record}/{!record_access}/{!clear} so
   the cache is invalidated. *)
type t = {
  mutable rev_events : event list;
  mutable fwd_cache : event list option;
  mutable enabled : bool;
  mutable mem : bool;  (** also record individual memory accesses *)
}

let create () = { rev_events = []; fwd_cache = None; enabled = true; mem = false }

let record t e =
  if t.enabled then begin
    t.rev_events <- e :: t.rev_events;
    t.fwd_cache <- None
  end

let record_access t ~addr ~write =
  if t.enabled && t.mem then begin
    t.rev_events <- Access { addr; write } :: t.rev_events;
    t.fwd_cache <- None
  end

let events t =
  match t.fwd_cache with
  | Some evs -> evs
  | None ->
    let evs = List.rev t.rev_events in
    t.fwd_cache <- Some evs;
    evs

let clear t =
  t.rev_events <- [];
  t.fwd_cache <- None

(* Functions executed anywhere in the trace. *)
let executed_functions t =
  List.filter_map
    (function
      | Call f -> Some f
      | Return _ | Op_enter _ | Op_exit _ | Access _ -> None)
    (events t)
  |> List.sort_uniq String.compare

(* Segment the trace into task instances: a task spans an [Op_enter e]
   (or, in an uninstrumented run, a [Call e] to a designated task entry at
   nesting depth relative to its return) until the matching exit.  Returns
   (entry, executed functions) per task instance. *)
let tasks_of ~entries (events : event list) =
  let is_entry f = List.mem f entries in
  let finished = ref [] in
  (* stack of (entry, functions accumulated) for nested tasks *)
  let active = ref [] in
  let push_funcs f =
    active := List.map (fun (e, fs) -> (e, f :: fs)) !active
  in
  let handle_enter f =
    if is_entry f then active := (f, [ f ]) :: List.map (fun (e, fs) -> (e, f :: fs)) !active
    else push_funcs f
  in
  let handle_exit f =
    if is_entry f then
      match !active with
      | (e, fs) :: rest when String.equal e f ->
        finished := (e, List.sort_uniq String.compare fs) :: !finished;
        active := rest
      | _ -> ()
  in
  List.iter
    (function
      | Call f | Op_enter f -> handle_enter f
      | Return f | Op_exit f -> handle_exit f
      | Access _ -> ())
    events;
  (* tasks still open at the end of the run (e.g. the main loop) *)
  List.iter
    (fun (e, fs) -> finished := (e, List.sort_uniq String.compare fs) :: !finished)
    !active;
  List.rev !finished

let tasks ~entries t = tasks_of ~entries (events t)

(* Per-global write observation: attribute every recorded write to the
   innermost active context (operation entries push/pop like the lint
   oracle's walker) and resolve its address to a named region.  Returns
   the distinct (context, region) pairs in first-observation order — the
   dynamic ground truth the sync-schedule soundness oracle checks the
   static may-write sets against. *)
let writes_by_context ~contexts ~default ~resolve (events : event list) =
  let stack = ref [] in
  let current () = match !stack with c :: _ -> c | [] -> default in
  let seen = Hashtbl.create 64 in
  let out = ref [] in
  List.iter
    (function
      | Call f | Op_enter f -> if contexts f then stack := f :: !stack
      | Return f | Op_exit f -> (
        match !stack with
        | c :: rest when String.equal c f -> stack := rest
        | _ -> ())
      | Access { addr; write } -> (
        if write then
          match resolve addr with
          | None -> ()
          | Some region ->
            let key = (current (), region) in
            if not (Hashtbl.mem seen key) then begin
              Hashtbl.replace seen key ();
              out := key :: !out
            end))
    events;
  List.rev !out

let pp_event fmt = function
  | Call f -> Fmt.pf fmt "call %s" f
  | Return f -> Fmt.pf fmt "ret %s" f
  | Op_enter f -> Fmt.pf fmt "op+ %s" f
  | Op_exit f -> Fmt.pf fmt "op- %s" f
  | Access { addr; write } ->
    Fmt.pf fmt "%s 0x%08X" (if write then "wr" else "rd") addr
