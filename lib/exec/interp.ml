(* The firmware interpreter.

   Executes the structured IR against the machine model.  Every memory
   access (loads, stores, memcpy/memset, spilled arguments) goes through
   the bus, so the MPU and privilege checks fire exactly where they would
   on hardware.  Supervisor calls and faults are delivered to a pluggable
   handler — OPEC-Monitor in instrumented runs, an abort-everything
   handler in baseline runs.

   Operation switching: the image marks operation entry functions.  When a
   call targets one, the interpreter performs the SVC protocol of
   Section 5.3: it traps to the handler with the evaluated arguments (the
   handler sanitizes/synchronizes globals, relocates stack data and
   rewrites the pointer arguments, reconfigures the MPU) and then invokes
   the entry with the arguments the handler returned; a second trap fires
   when the entry returns.

   Two execution engines share the machine-facing plumbing:

   - [Tree] walks the IR directly: a string-keyed hashtable environment
     per activation and a recursive [eval] dispatch per expression node.
     It is the reference semantics.
   - [Decoded] (the default) decodes each function once at image-load
     time: locals are resolved to integer slots in a flat frame array
     and every instruction and expression is compiled to a closure, so
     the hot path performs no string hashing and no per-node match
     dispatch.

   Cycle accounting is identical bit-for-bit between the engines at
   every observable point — bus accesses, operation switches, SVCs, and
   run completion — so every overhead ratio the evaluation reports is
   unchanged by the engine choice.  (The decoded engine batches an
   instruction's expression-node cycles up front; see [decode] for the
   argument and for the one divergence window, aborts inside an
   expression.)  The differential tests replay whole workloads under
   both engines and assert equal traces, cycles, and memory. *)

open Opec_ir
module M = Opec_machine
module Obs = Opec_obs

exception Aborted of string
exception Fuel_exhausted

type access_desc =
  | Access_load of { addr : int; width : int }
  | Access_store of { addr : int; width : int; value : int64 }

type fault_action = Retry | Abort of string
type bus_action = Emulated of int64 | Bus_abort of string

type handler = {
  on_operation_enter : entry:Func.t -> args:int64 array -> int64 array;
  on_operation_exit : entry:Func.t -> unit;
  on_mem_fault : access_desc -> M.Fault.info -> fault_action;
  on_bus_fault : access_desc -> M.Fault.info -> bus_action;
  on_svc : int -> unit;
}

(* Baseline handler: no monitor; any fault kills the firmware, any SVC is
   ignored (baseline images contain none). *)
let abort_handler =
  { on_operation_enter = (fun ~entry:_ ~args -> args);
    on_operation_exit = (fun ~entry:_ -> ());
    on_mem_fault =
      (fun _ info -> Abort (Fmt.str "MemManage: %a" M.Fault.pp_info info));
    on_bus_fault =
      (fun _ info -> Bus_abort (Fmt.str "BusFault: %a" M.Fault.pp_info info));
    on_svc = (fun _ -> ()) }

type engine = Tree | Decoded

(* A decoded activation record: locals live in [regs] at slots assigned
   at decode time; [def] tracks which slots have been written, so a read
   of a never-assigned local raises the same usage fault the tree
   engine's hashtable miss does. *)
type frame = { regs : int64 array; def : Bytes.t }

type dfunc = {
  df_func : Func.t;
  df_nslots : int;
  df_nparams : int;
  df_body : (frame -> unit) array;
}

type t = {
  program : Program.t;
  funcs : Func.t Program.String_map.t;
  bus : M.Bus.t;
  map : Address_map.t;
  mutable handler : handler;
  trace : Trace.t;
  entries : (string, unit) Hashtbl.t;  (** operation entry functions *)
  mutable fuel : int;
  mutable depth : int;
  max_depth : int;
  engine : engine;
  dfuncs : (string, dfunc) Hashtbl.t;  (** decoded code, [Decoded] only *)
  (* switch bookkeeping for metrics: counts completed SVC transitions,
     both traps — one on entry, one on exit — matching the monitor's
     [Stats.switches] on single-threaded runs *)
  mutable operation_switches : int;
  (* telemetry sink; [Obs.Sink.null] unless a collector is attached *)
  mutable sink : Obs.Sink.t;
  (* last data-access fault delivered to the handler, for post-mortem
     classification (the attack campaign reads it after an abort) *)
  mutable last_fault : (access_desc * M.Fault.info) option;
}

let cpu t = t.bus.M.Bus.cpu
let set_handler t handler = t.handler <- handler
let last_fault t = t.last_fault
let trace t = t.trace
let cycles t = M.Cpu.cycles (cpu t)
let switches t = t.operation_switches
let engine t = t.engine
let sink t = t.sink
let set_sink t sink = t.sink <- sink

(* One SVC transition completed: count it and leave an independent mark
   in the telemetry stream (the counter-drift test reconciles these
   marks against the monitor's switch spans). *)
let svc_mark t kind (fname : string) =
  t.operation_switches <- t.operation_switches + 1;
  if t.sink.Obs.Sink.active then
    t.sink.Obs.Sink.emit
      (Obs.Sink.Svc_switch
         { sv_kind = kind; sv_entry = fname; sv_at = M.Cpu.cycles (cpu t) })

exception Halted
exception Returning of int64

(* --- environment (tree engine) ---------------------------------------- *)

module Env = struct
  type t = (string, int64) Hashtbl.t

  let create () : t = Hashtbl.create 16
  let get env x =
    match Hashtbl.find_opt env x with
    | Some v -> v
    | None -> raise (M.Fault.Usage (Printf.sprintf "use of undefined local %s" x))

  let set env x v = Hashtbl.replace env x v
end

(* --- expression evaluation (tree engine) ------------------------------- *)

let truthy v = not (Int64.equal v 0L)

let rec eval t env (e : Expr.t) =
  M.Cpu.charge (cpu t) 1;
  match e with
  | Expr.Const n -> n
  | Expr.Local x -> Env.get env x
  | Expr.Global_addr g -> Int64.of_int (t.map.Address_map.global_addr g)
  | Expr.Func_addr f -> Int64.of_int (t.map.Address_map.func_addr f)
  | Expr.Un (Expr.Neg, a) -> Int64.neg (eval t env a)
  | Expr.Un (Expr.Not, a) -> Int64.lognot (eval t env a)
  | Expr.Bin (op, a, b) -> (
    let va = eval t env a in
    let vb = eval t env b in
    match Expr.eval_bin op va vb with
    | Some v -> v
    | None -> raise (M.Fault.Usage "division by zero"))

(* --- MPU-checked access with fault delivery --------------------------- *)

let rec checked_load t addr width =
  try
    let v = M.Bus.read t.bus addr width in
    Trace.record_access t.trace ~addr ~write:false;
    v
  with
  | M.Fault.Mem_manage info -> (
    let desc = Access_load { addr; width } in
    t.last_fault <- Some (desc, info);
    match t.handler.on_mem_fault desc info with
    | Retry -> checked_load t addr width
    | Abort msg -> raise (Aborted msg))
  | M.Fault.Bus info -> (
    let desc = Access_load { addr; width } in
    t.last_fault <- Some (desc, info);
    match t.handler.on_bus_fault desc info with
    | Emulated v -> v
    | Bus_abort msg -> raise (Aborted msg))

let rec checked_store t addr width v =
  try
    M.Bus.write t.bus addr width v;
    Trace.record_access t.trace ~addr ~write:true
  with
  | M.Fault.Mem_manage info -> (
    let desc = Access_store { addr; width; value = v } in
    t.last_fault <- Some (desc, info);
    match t.handler.on_mem_fault desc info with
    | Retry -> checked_store t addr width v
    | Abort msg -> raise (Aborted msg))
  | M.Fault.Bus info -> (
    let desc = Access_store { addr; width; value = v } in
    t.last_fault <- Some (desc, info);
    match t.handler.on_bus_fault desc info with
    | Emulated _ -> ()
    | Bus_abort msg -> raise (Aborted msg))

(* --- instruction execution (tree engine) ------------------------------- *)

let spill_threshold = 4 (* first four arguments travel in registers *)

let rec exec_block t env block =
  List.iter (exec_instr t env) block

and exec_instr t env instr =
  if t.fuel <= 0 then raise Fuel_exhausted;
  t.fuel <- t.fuel - 1;
  M.Cpu.charge (cpu t) 1;
  match instr with
  | Instr.Nop -> ()
  | Instr.Let (x, e) -> Env.set env x (eval t env e)
  | Instr.Load (x, w, a) ->
    let addr = Int64.to_int (eval t env a) in
    Env.set env x (checked_load t addr (Instr.width_bytes w))
  | Instr.Store (w, a, v) ->
    let addr = Int64.to_int (eval t env a) in
    let v = eval t env v in
    checked_store t addr (Instr.width_bytes w) v
  | Instr.Alloca (x, ty) ->
    let c = cpu t in
    let size = (Ty.size_of ty + 7) land lnot 7 in
    let sp = c.M.Cpu.sp - size in
    if sp < c.M.Cpu.stack_base then raise (Aborted "stack overflow");
    c.M.Cpu.sp <- sp;
    Env.set env x (Int64.of_int sp)
  | Instr.Call (dst, callee, args) ->
    let fname =
      match callee with
      | Instr.Direct f -> f
      | Instr.Indirect e ->
        let addr = Int64.to_int (eval t env e) in
        (match t.map.Address_map.func_of_addr addr with
        | Some f -> f
        | None ->
          raise
            (Aborted (Printf.sprintf "indirect call to non-function 0x%08X" addr)))
    in
    let argv = List.map (eval t env) args in
    let ret = call t fname argv in
    Option.iter (fun x -> Env.set env x ret) dst
  | Instr.If (c, a, b) ->
    if truthy (eval t env c) then exec_block t env a else exec_block t env b
  | Instr.While (c, body) ->
    let rec loop () =
      if t.fuel <= 0 then raise Fuel_exhausted;
      if truthy (eval t env c) then begin
        exec_block t env body;
        loop ()
      end
    in
    loop ()
  | Instr.Return e ->
    let v = match e with None -> 0L | Some e -> eval t env e in
    raise (Returning v)
  | Instr.Memcpy (d, s, n) ->
    let dst = Int64.to_int (eval t env d) in
    let src = Int64.to_int (eval t env s) in
    let len = Int64.to_int (eval t env n) in
    let rec go off =
      if off < len then begin
        let w = if len - off >= 4 && (dst + off) land 3 = 0 && (src + off) land 3 = 0 then 4 else 1 in
        checked_store t (dst + off) w (checked_load t (src + off) w);
        go (off + w)
      end
    in
    go 0
  | Instr.Memset (d, v, n) ->
    let dst = Int64.to_int (eval t env d) in
    let v = eval t env v in
    let len = Int64.to_int (eval t env n) in
    let word =
      let b = Int64.logand v 0xFFL in
      List.fold_left
        (fun acc sh -> Int64.logor acc (Int64.shift_left b sh))
        0L [ 0; 8; 16; 24 ]
    in
    let rec go off =
      if off < len then begin
        let w = if len - off >= 4 && (dst + off) land 3 = 0 then 4 else 1 in
        checked_store t (dst + off) w (if w = 4 then word else v);
        go (off + w)
      end
    in
    go 0
  | Instr.Svc n -> t.handler.on_svc n
  | Instr.Halt -> raise Halted

(* --- function calls (tree engine) --------------------------------------- *)

and call t fname argv =
  let f =
    match Program.String_map.find_opt fname t.funcs with
    | Some f -> f
    | None -> raise (Aborted ("call to undefined function " ^ fname))
  in
  (* instruction-fetch permission for the callee's first instruction *)
  (try M.Bus.check_execute t.bus (t.map.Address_map.func_addr fname)
   with
  | M.Fault.Mem_manage info | M.Fault.Bus info ->
    raise (Aborted (Fmt.str "execute fault entering %s: %a" fname M.Fault.pp_info info)));
  if t.depth >= t.max_depth then raise (Aborted "call depth exceeded");
  if Hashtbl.mem t.entries fname then call_operation t f argv
  else call_plain t f argv

and call_plain t (f : Func.t) argv =
  let c = cpu t in
  let saved_sp = c.M.Cpu.sp in
  (* arguments beyond the register set travel on the caller's stack *)
  let argv = Array.of_list argv in
  spill t argv;
  M.Cpu.charge c 2;
  Trace.record t.trace (Trace.Call f.name);
  t.depth <- t.depth + 1;
  let env = Env.create () in
  List.iteri
    (fun i (x, _ty) ->
      Env.set env x (if i < Array.length argv then argv.(i) else 0L))
    f.params;
  let ret =
    match exec_block t env f.body with
    | () -> 0L
    | exception Returning v -> v
  in
  t.depth <- t.depth - 1;
  Trace.record t.trace (Trace.Return f.name);
  c.M.Cpu.sp <- saved_sp;
  ret

(* Operation switch protocol: SVC trap in, run entry, SVC trap out. *)
and call_operation t (f : Func.t) argv =
  let c = cpu t in
  let saved_sp = c.M.Cpu.sp in
  M.Cpu.charge c 4 (* SVC entry/exit pipeline cost *);
  let argv = Array.of_list argv in
  let argv' =
    M.Cpu.with_privilege c (fun () -> t.handler.on_operation_enter ~entry:f ~args:argv)
  in
  svc_mark t Obs.Sink.Enter f.name;
  Trace.record t.trace (Trace.Op_enter f.name);
  t.depth <- t.depth + 1;
  let env = Env.create () in
  List.iteri
    (fun i (x, _ty) ->
      Env.set env x (if i < Array.length argv' then argv'.(i) else 0L))
    f.params;
  let finish () =
    M.Cpu.charge c 4;
    M.Cpu.with_privilege c (fun () -> t.handler.on_operation_exit ~entry:f);
    (* the exit trap is a switch too — keep this count in lockstep with
       the monitor's [Stats.switches], which counts both directions *)
    svc_mark t Obs.Sink.Exit f.name;
    t.depth <- t.depth - 1;
    Trace.record t.trace (Trace.Op_exit f.name);
    c.M.Cpu.sp <- saved_sp
  in
  match exec_block t env f.body with
  | () -> finish (); 0L
  | exception Returning v -> finish (); v
  | exception e -> finish (); raise e

(* Spill arguments beyond the register set onto the caller's stack and
   read them back, exactly as the callee's prologue would. *)
and spill t (argv : int64 array) =
  let c = cpu t in
  let spill_count = max 0 (Array.length argv - spill_threshold) in
  if spill_count > 0 then begin
    let base = c.M.Cpu.sp - (spill_count * 4) in
    if base < c.M.Cpu.stack_base then raise (Aborted "stack overflow");
    c.M.Cpu.sp <- base;
    for i = 0 to spill_count - 1 do
      checked_store t (base + (i * 4)) 4 argv.(spill_threshold + i)
    done;
    (* the callee reads them back *)
    for i = 0 to spill_count - 1 do
      argv.(spill_threshold + i) <- checked_load t (base + (i * 4)) 4
    done
  end

(* --- decoded engine ----------------------------------------------------- *)

(* A call target resolved once: the decoded code, the code address for
   the execute check, and whether the callee is an operation entry.
   Direct calls cache this in the call site's closure after the first
   call, so the hot path performs no string hashing at all. *)
type dtarget = {
  dt_func : dfunc;
  dt_addr : int;
  dt_entry : bool;
}

(* Calls between decoded functions: same protocol as the tree engine but
   over decoded activation frames; argument vectors are already arrays. *)
let rec dresolve t fname =
  match Hashtbl.find_opt t.dfuncs fname with
  | None -> raise (Aborted ("call to undefined function " ^ fname))
  | Some df ->
    { dt_func = df;
      dt_addr = t.map.Address_map.func_addr fname;
      dt_entry = Hashtbl.mem t.entries fname }

and dcall_target t dt (argv : int64 array) =
  (try M.Bus.check_execute t.bus dt.dt_addr
   with
  | M.Fault.Mem_manage info | M.Fault.Bus info ->
    raise
      (Aborted
         (Fmt.str "execute fault entering %s: %a" dt.dt_func.df_func.Func.name
            M.Fault.pp_info info)));
  if t.depth >= t.max_depth then raise (Aborted "call depth exceeded");
  if dt.dt_entry then dcall_operation t dt.dt_func argv
  else dcall_plain t dt.dt_func argv

and dcall t fname (argv : int64 array) = dcall_target t (dresolve t fname) argv

and dframe df (argv : int64 array) =
  let fr =
    { regs = Array.make df.df_nslots 0L; def = Bytes.make df.df_nslots '\000' }
  in
  let n = Array.length argv in
  for i = 0 to df.df_nparams - 1 do
    fr.regs.(i) <- (if i < n then argv.(i) else 0L);
    Bytes.unsafe_set fr.def i '\001'
  done;
  fr

and dexec_body body fr =
  let n = Array.length (body : (frame -> unit) array) in
  for i = 0 to n - 1 do (Array.unsafe_get body i) fr done

and dcall_plain t df (argv : int64 array) =
  let c = cpu t in
  let saved_sp = c.M.Cpu.sp in
  spill t argv;
  M.Cpu.charge c 2;
  Trace.record t.trace (Trace.Call df.df_func.Func.name);
  t.depth <- t.depth + 1;
  let fr = dframe df argv in
  let ret =
    match dexec_body df.df_body fr with
    | () -> 0L
    | exception Returning v -> v
  in
  t.depth <- t.depth - 1;
  Trace.record t.trace (Trace.Return df.df_func.Func.name);
  c.M.Cpu.sp <- saved_sp;
  ret

and dcall_operation t df (argv : int64 array) =
  let c = cpu t in
  let saved_sp = c.M.Cpu.sp in
  M.Cpu.charge c 4 (* SVC entry/exit pipeline cost *);
  let f = df.df_func in
  let argv' =
    M.Cpu.with_privilege c (fun () -> t.handler.on_operation_enter ~entry:f ~args:argv)
  in
  svc_mark t Obs.Sink.Enter f.Func.name;
  Trace.record t.trace (Trace.Op_enter f.Func.name);
  t.depth <- t.depth + 1;
  let fr = dframe df argv' in
  let finish () =
    M.Cpu.charge c 4;
    M.Cpu.with_privilege c (fun () -> t.handler.on_operation_exit ~entry:f);
    (* exit trap counts too; see [call_operation] *)
    svc_mark t Obs.Sink.Exit f.Func.name;
    t.depth <- t.depth - 1;
    Trace.record t.trace (Trace.Op_exit f.Func.name);
    c.M.Cpu.sp <- saved_sp
  in
  match dexec_body df.df_body fr with
  | () -> finish (); 0L
  | exception Returning v -> finish (); v
  | exception e -> finish (); raise e

(* Decode one function: assign every local name a slot (parameters
   first, then names in order of appearance) and compile the body to
   closures.

   Cycle accounting is batched: expression closures themselves charge
   nothing; each instruction closure charges, up front, the one cycle
   the tree walker's dispatch charges plus one cycle per expression node
   the instruction is about to evaluate.  Expressions never touch the
   bus (loads are instructions), so at every observable point — a bus
   access, an operation switch, an SVC — the cumulative count is
   bit-identical to the tree engine's node-by-node charging.  The only
   divergence window is a run aborting *inside* an expression (division
   by zero, read of a never-assigned local): the batched count is then
   ahead by the nodes that never evaluated.  Such a run dies on the
   spot, and no evaluation artifact compares cycle counts of aborted
   runs across engines.

   Direct call sites resolve their target (decoded code, code address,
   entry bit) once, on first execution, and cache it in the closure —
   no string hashing on the call hot path. *)
let decode t (f : Func.t) : dfunc =
  let c = cpu t in
  let slots = Hashtbl.create 16 in
  let nslots = ref 0 in
  let slot x =
    match Hashtbl.find_opt slots x with
    | Some i -> i
    | None ->
      let i = !nslots in
      incr nslots;
      Hashtbl.add slots x i;
      i
  in
  List.iter (fun (x, _ty) -> ignore (slot x)) f.Func.params;
  (* [dexpr e] is the uncharged evaluation closure and the node count
     of [e] — the cycles its evaluation owes, charged by the enclosing
     instruction. *)
  let rec dexpr (e : Expr.t) : (frame -> int64) * int =
    match e with
    | Expr.Const n -> ((fun _fr -> n), 1)
    | Expr.Local x ->
      let i = slot x in
      ( (fun fr ->
          if Bytes.unsafe_get fr.def i = '\000' then
            raise
              (M.Fault.Usage (Printf.sprintf "use of undefined local %s" x))
          else Array.unsafe_get fr.regs i),
        1 )
    | Expr.Global_addr g -> (
      (* resolve at decode time when possible; an unknown name keeps
         the tree engine's fault-at-evaluation behaviour *)
      match Int64.of_int (t.map.Address_map.global_addr g) with
      | addr -> ((fun _fr -> addr), 1)
      | exception _ ->
        ((fun _fr -> Int64.of_int (t.map.Address_map.global_addr g)), 1))
    | Expr.Func_addr fn -> (
      match Int64.of_int (t.map.Address_map.func_addr fn) with
      | addr -> ((fun _fr -> addr), 1)
      | exception _ ->
        ((fun _fr -> Int64.of_int (t.map.Address_map.func_addr fn)), 1))
    | Expr.Un (Expr.Neg, a) ->
      let ka, wa = dexpr a in
      ((fun fr -> Int64.neg (ka fr)), wa + 1)
    | Expr.Un (Expr.Not, a) ->
      let ka, wa = dexpr a in
      ((fun fr -> Int64.lognot (ka fr)), wa + 1)
    | Expr.Bin (op, a, b) ->
      let ka, wa = dexpr a in
      let kb, wb = dexpr b in
      let w = wa + wb + 1 in
      (* specialize the operator at decode time: no dispatch and no
         option allocation per evaluation *)
      let k =
        match op with
        | Expr.Add -> fun fr -> Int64.add (ka fr) (kb fr)
        | Expr.Sub -> fun fr -> Int64.sub (ka fr) (kb fr)
        | Expr.Mul -> fun fr -> Int64.mul (ka fr) (kb fr)
        | Expr.Div ->
          fun fr ->
            let va = ka fr in
            let vb = kb fr in
            if Int64.equal vb 0L then
              raise (M.Fault.Usage "division by zero")
            else Int64.div va vb
        | Expr.Rem ->
          fun fr ->
            let va = ka fr in
            let vb = kb fr in
            if Int64.equal vb 0L then
              raise (M.Fault.Usage "division by zero")
            else Int64.rem va vb
        | Expr.And -> fun fr -> Int64.logand (ka fr) (kb fr)
        | Expr.Or -> fun fr -> Int64.logor (ka fr) (kb fr)
        | Expr.Xor -> fun fr -> Int64.logxor (ka fr) (kb fr)
        | Expr.Shl ->
          fun fr ->
            let va = ka fr in
            let vb = kb fr in
            Int64.shift_left va (Int64.to_int vb land 63)
        | Expr.Shr ->
          fun fr ->
            let va = ka fr in
            let vb = kb fr in
            Int64.shift_right_logical va (Int64.to_int vb land 63)
        | Expr.Eq -> fun fr -> if Int64.equal (ka fr) (kb fr) then 1L else 0L
        | Expr.Ne ->
          fun fr -> if Int64.equal (ka fr) (kb fr) then 0L else 1L
        | Expr.Lt ->
          fun fr -> if Int64.compare (ka fr) (kb fr) < 0 then 1L else 0L
        | Expr.Le ->
          fun fr -> if Int64.compare (ka fr) (kb fr) <= 0 then 1L else 0L
        | Expr.Gt ->
          fun fr -> if Int64.compare (ka fr) (kb fr) > 0 then 1L else 0L
        | Expr.Ge ->
          fun fr -> if Int64.compare (ka fr) (kb fr) >= 0 then 1L else 0L
      in
      (k, w)
  in
  let set fr i v =
    Array.unsafe_set fr.regs i v;
    Bytes.unsafe_set fr.def i '\001'
  in
  (* the per-instruction prologue: the tree walker's fuel/dispatch cost
     plus the batched cycles of the instruction's expressions *)
  let pre w =
    if t.fuel <= 0 then raise Fuel_exhausted;
    t.fuel <- t.fuel - 1;
    M.Cpu.charge c w
  in
  let rec dinstr (instr : Instr.t) : frame -> unit =
    match instr with
    | Instr.Nop -> fun _fr -> pre 1
    | Instr.Let (x, e) ->
      let i = slot x in
      let ke, we = dexpr e in
      let w = we + 1 in
      fun fr -> pre w; set fr i (ke fr)
    | Instr.Load (x, w, a) ->
      let i = slot x in
      let ka, wa = dexpr a in
      let width = Instr.width_bytes w in
      let w = wa + 1 in
      fun fr ->
        pre w;
        let addr = Int64.to_int (ka fr) in
        set fr i (checked_load t addr width)
    | Instr.Store (w, a, v) ->
      let ka, wa = dexpr a in
      let kv, wv = dexpr v in
      let width = Instr.width_bytes w in
      let w = wa + wv + 1 in
      fun fr ->
        pre w;
        let addr = Int64.to_int (ka fr) in
        let v = kv fr in
        checked_store t addr width v
    | Instr.Alloca (x, ty) ->
      let i = slot x in
      let size = (Ty.size_of ty + 7) land lnot 7 in
      fun fr ->
        pre 1;
        let sp = c.M.Cpu.sp - size in
        if sp < c.M.Cpu.stack_base then raise (Aborted "stack overflow");
        c.M.Cpu.sp <- sp;
        set fr i (Int64.of_int sp)
    | Instr.Call (dst, callee, args) ->
      let kargs_l = List.map dexpr args in
      let kargs = Array.of_list (List.map fst kargs_l) in
      let wargs = List.fold_left (fun acc (_, w) -> acc + w) 0 kargs_l in
      let idst = Option.map slot dst in
      let eval_args fr =
        let n = Array.length kargs in
        let argv = Array.make n 0L in
        for i = 0 to n - 1 do
          Array.unsafe_set argv i ((Array.unsafe_get kargs i) fr)
        done;
        argv
      in
      (match callee with
      | Instr.Direct fname ->
        let w = wargs + 1 in
        let target = ref None in
        fun fr ->
          pre w;
          let argv = eval_args fr in
          let dt =
            match !target with
            | Some dt -> dt
            | None ->
              let dt = dresolve t fname in
              target := Some dt;
              dt
          in
          let ret = dcall_target t dt argv in
          (match idst with Some i -> set fr i ret | None -> ())
      | Instr.Indirect e ->
        let ke, we = dexpr e in
        let w = wargs + we + 1 in
        fun fr ->
          pre w;
          let addr = Int64.to_int (ke fr) in
          let fname =
            match t.map.Address_map.func_of_addr addr with
            | Some f -> f
            | None ->
              raise
                (Aborted
                   (Printf.sprintf "indirect call to non-function 0x%08X" addr))
          in
          let argv = eval_args fr in
          let ret = dcall t fname argv in
          (match idst with Some i -> set fr i ret | None -> ()))
    | Instr.If (cond, a, b) ->
      let kc, wc = dexpr cond in
      let ka = dblock a in
      let kb = dblock b in
      let w = wc + 1 in
      fun fr ->
        pre w;
        if truthy (kc fr) then dexec_body ka fr else dexec_body kb fr
    | Instr.While (cond, body) ->
      let kc, wc = dexpr cond in
      let kb = dblock body in
      fun fr ->
        pre 1;
        let rec loop () =
          if t.fuel <= 0 then raise Fuel_exhausted;
          M.Cpu.charge c wc;
          if truthy (kc fr) then begin
            dexec_body kb fr;
            loop ()
          end
        in
        loop ()
    | Instr.Return e ->
      let ke = match e with None -> None | Some e -> Some (dexpr e) in
      let w = match ke with None -> 1 | Some (_, we) -> we + 1 in
      let ke = Option.map fst ke in
      fun fr ->
        pre w;
        let v = match ke with None -> 0L | Some k -> k fr in
        raise (Returning v)
    | Instr.Memcpy (d, s, n) ->
      let kd, wd = dexpr d in
      let ks, ws = dexpr s in
      let kn, wn = dexpr n in
      let w = wd + ws + wn + 1 in
      fun fr ->
        pre w;
        let dst = Int64.to_int (kd fr) in
        let src = Int64.to_int (ks fr) in
        let len = Int64.to_int (kn fr) in
        let rec go off =
          if off < len then begin
            let w =
              if len - off >= 4 && (dst + off) land 3 = 0 && (src + off) land 3 = 0
              then 4
              else 1
            in
            checked_store t (dst + off) w (checked_load t (src + off) w);
            go (off + w)
          end
        in
        go 0
    | Instr.Memset (d, v, n) ->
      let kd, wd = dexpr d in
      let kv, wv = dexpr v in
      let kn, wn = dexpr n in
      let w = wd + wv + wn + 1 in
      fun fr ->
        pre w;
        let dst = Int64.to_int (kd fr) in
        let v = kv fr in
        let len = Int64.to_int (kn fr) in
        let word =
          let b = Int64.logand v 0xFFL in
          List.fold_left
            (fun acc sh -> Int64.logor acc (Int64.shift_left b sh))
            0L [ 0; 8; 16; 24 ]
        in
        let rec go off =
          if off < len then begin
            let w = if len - off >= 4 && (dst + off) land 3 = 0 then 4 else 1 in
            checked_store t (dst + off) w (if w = 4 then word else v);
            go (off + w)
          end
        in
        go 0
    | Instr.Svc n -> fun _fr -> pre 1; t.handler.on_svc n
    | Instr.Halt -> fun _fr -> pre 1; raise Halted
  and dblock (block : Instr.block) : (frame -> unit) array =
    Array.of_list (List.map dinstr block)
  in
  let body = dblock f.Func.body in
  { df_func = f; df_nslots = !nslots; df_nparams = List.length f.Func.params;
    df_body = body }

(* --- construction ------------------------------------------------------- *)

let create ?(fuel = 200_000_000) ?(max_depth = 200) ?(handler = abort_handler)
    ?(entries = []) ?(engine = Decoded) ?(sink = Obs.Sink.null) ~bus ~map
    program =
  let tbl = Hashtbl.create 16 in
  List.iter (fun e -> Hashtbl.replace tbl e ()) entries;
  let t =
    { program;
      funcs = Program.func_map program;
      bus;
      map;
      handler;
      trace = Trace.create ();
      entries = tbl;
      fuel;
      depth = 0;
      max_depth;
      engine;
      dfuncs = Hashtbl.create 64;
      operation_switches = 0;
      sink;
      last_fault = None }
  in
  (match engine with
  | Tree -> ()
  | Decoded ->
    (* decode once, at image-load time *)
    List.iter
      (fun (f : Func.t) -> Hashtbl.replace t.dfuncs f.Func.name (decode t f))
      program.Program.funcs);
  t

(* --- program entry ------------------------------------------------------ *)

let call t fname argv =
  match t.engine with
  | Tree -> call t fname argv
  | Decoded -> dcall t fname (Array.of_list argv)

let run ?(reset_stack = true) t =
  (* a fresh run must not inherit the previous run's fault: interpreters
     live beyond one run in the memoized pipeline store, and post-mortem
     classifiers read [last_fault] after the run ends *)
  t.last_fault <- None;
  let c = cpu t in
  if reset_stack then begin
    c.M.Cpu.sp <- t.map.Address_map.stack_top;
    c.M.Cpu.stack_base <- t.map.Address_map.stack_base;
    c.M.Cpu.stack_limit <- t.map.Address_map.stack_top
  end;
  match call t t.program.Program.main [] with
  | _ -> ()
  | exception Halted -> ()
