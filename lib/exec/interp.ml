(* The firmware interpreter.

   Executes the structured IR against the machine model.  Every memory
   access (loads, stores, memcpy/memset, spilled arguments) goes through
   the bus, so the MPU and privilege checks fire exactly where they would
   on hardware.  Supervisor calls and faults are delivered to a pluggable
   handler — OPEC-Monitor in instrumented runs, an abort-everything
   handler in baseline runs.

   Operation switching: the image marks operation entry functions.  When a
   call targets one, the interpreter performs the SVC protocol of
   Section 5.3: it traps to the handler with the evaluated arguments (the
   handler sanitizes/synchronizes globals, relocates stack data and
   rewrites the pointer arguments, reconfigures the MPU) and then invokes
   the entry with the arguments the handler returned; a second trap fires
   when the entry returns.

   Three execution engines share the machine-facing plumbing:

   - [Tree] walks the IR directly: a string-keyed hashtable environment
     per activation and a recursive [eval] dispatch per expression node.
     It is the reference semantics.
   - [Decoded] decodes each function once at image-load time: locals
     are resolved to integer slots in a flat frame array and every
     instruction and expression is compiled to a closure, so the hot
     path performs no string hashing and no per-node match dispatch.
   - [Compiled] (the default) goes one rung further: each function body
     is translated once into a tree of OCaml closures with no opcode
     dispatch at all — constants folded and local slots bound into the
     closures themselves, runs of pure instructions fused into
     superblocks with one fuel/cycle charge per block, direct-call
     targets bound to the callee's compiled code at translation time,
     and load/store fast paths that skip the bus's address decode when
     the target region is statically known.  See the compiled-engine
     section below for the design.

   Cycle accounting is identical bit-for-bit between the engines at
   every observable point — bus accesses, operation switches, SVCs, and
   run completion — so every overhead ratio the evaluation reports is
   unchanged by the engine choice.  (The decoded and compiled engines
   batch expression-node cycles up front; see [decode] for the argument
   and for the one divergence window, aborts inside an expression.)
   The differential tests replay whole workloads under all engines and
   assert equal traces, cycles, and memory. *)

open Opec_ir
module M = Opec_machine
module Obs = Opec_obs

exception Aborted of string
exception Fuel_exhausted

type access_desc =
  | Access_load of { addr : int; width : int }
  | Access_store of { addr : int; width : int; value : int64 }

type fault_action = Retry | Abort of string
type bus_action = Emulated of int64 | Bus_abort of string

type handler = {
  on_operation_enter : entry:Func.t -> args:int64 array -> int64 array;
  on_operation_exit : entry:Func.t -> unit;
  on_mem_fault : access_desc -> M.Fault.info -> fault_action;
  on_bus_fault : access_desc -> M.Fault.info -> bus_action;
  on_svc : int -> unit;
}

(* Baseline handler: no monitor; any fault kills the firmware, any SVC is
   ignored (baseline images contain none). *)
let abort_handler =
  { on_operation_enter = (fun ~entry:_ ~args -> args);
    on_operation_exit = (fun ~entry:_ -> ());
    on_mem_fault =
      (fun _ info -> Abort (Fmt.str "MemManage: %a" M.Fault.pp_info info));
    on_bus_fault =
      (fun _ info -> Bus_abort (Fmt.str "BusFault: %a" M.Fault.pp_info info));
    on_svc = (fun _ -> ()) }

type engine = Tree | Decoded | Compiled

(* A decoded activation record: locals live in [regs] at slots assigned
   at decode time; [def] tracks which slots have been written, so a read
   of a never-assigned local raises the same usage fault the tree
   engine's hashtable miss does.  The compiled engine reuses the record;
   functions whose locals are all definitely assigned skip the [def]
   bookkeeping and share one empty byte string. *)
type frame = { regs : int64 array; def : Bytes.t }

type dfunc = {
  df_func : Func.t;
  df_nslots : int;
  df_nparams : int;
  df_body : (frame -> unit) array;
}

(* A closure-compiled function.  [cf_entry] runs a fresh activation to
   completion and produces the return value (functions whose only
   [Return] is in tail position return it directly, with no exception);
   [cf_checked] keeps the decoded engine's def-tracked frames for the
   rare function where some local read is not definitely assigned.
   Fields are mutable because translation is two-phase: records for
   every function exist before bodies compile, so direct call sites
   bind their callee's record — not a name — into the call closure. *)
type cfunc = {
  cf_func : Func.t;
  mutable cf_nslots : int;
  cf_nparams : int;
  mutable cf_checked : bool;
  mutable cf_entry : frame -> int64;
}

type t = {
  program : Program.t;
  funcs : Func.t Program.String_map.t;
  bus : M.Bus.t;
  map : Address_map.t;
  mutable handler : handler;
  trace : Trace.t;
  entries : (string, unit) Hashtbl.t;  (** operation entry functions *)
  mutable fuel : int;
  mutable depth : int;
  max_depth : int;
  engine : engine;
  dfuncs : (string, dfunc) Hashtbl.t;  (** decoded code, [Decoded] only *)
  cfuncs : (string, cfunc) Hashtbl.t;  (** compiled code, [Compiled] only *)
  (* switch bookkeeping for metrics: counts completed SVC transitions,
     both traps — one on entry, one on exit — matching the monitor's
     [Stats.switches] on single-threaded runs *)
  mutable operation_switches : int;
  (* telemetry sink; [Obs.Sink.null] unless a collector is attached *)
  mutable sink : Obs.Sink.t;
  (* last data-access fault delivered to the handler, for post-mortem
     classification (the attack campaign reads it after an abort) *)
  mutable last_fault : (access_desc * M.Fault.info) option;
}

let cpu t = t.bus.M.Bus.cpu
let set_handler t handler = t.handler <- handler
let last_fault t = t.last_fault
let trace t = t.trace
let cycles t = M.Cpu.cycles (cpu t)
let switches t = t.operation_switches
let engine t = t.engine
let sink t = t.sink
let set_sink t sink = t.sink <- sink

(* One SVC transition completed: count it and leave an independent mark
   in the telemetry stream (the counter-drift test reconciles these
   marks against the monitor's switch spans). *)
let svc_mark t kind (fname : string) =
  t.operation_switches <- t.operation_switches + 1;
  if t.sink.Obs.Sink.active then
    t.sink.Obs.Sink.emit
      (Obs.Sink.Svc_switch
         { sv_kind = kind; sv_entry = fname; sv_at = M.Cpu.cycles (cpu t) })

exception Halted
exception Returning of int64

(* --- environment (tree engine) ---------------------------------------- *)

module Env = struct
  type t = (string, int64) Hashtbl.t

  let create () : t = Hashtbl.create 16
  let get env x =
    match Hashtbl.find_opt env x with
    | Some v -> v
    | None -> raise (M.Fault.Usage (Printf.sprintf "use of undefined local %s" x))

  let set env x v = Hashtbl.replace env x v
end

(* --- expression evaluation (tree engine) ------------------------------- *)

let truthy v = not (Int64.equal v 0L)

let rec eval t env (e : Expr.t) =
  M.Cpu.charge (cpu t) 1;
  match e with
  | Expr.Const n -> n
  | Expr.Local x -> Env.get env x
  | Expr.Global_addr g -> Int64.of_int (t.map.Address_map.global_addr g)
  | Expr.Func_addr f -> Int64.of_int (t.map.Address_map.func_addr f)
  | Expr.Un (Expr.Neg, a) -> Int64.neg (eval t env a)
  | Expr.Un (Expr.Not, a) -> Int64.lognot (eval t env a)
  | Expr.Bin (op, a, b) -> (
    let va = eval t env a in
    let vb = eval t env b in
    match Expr.eval_bin op va vb with
    | Some v -> v
    | None -> raise (M.Fault.Usage "division by zero"))

(* --- MPU-checked access with fault delivery --------------------------- *)

let rec checked_load t addr width =
  try
    let v = M.Bus.read t.bus addr width in
    Trace.record_access t.trace ~addr ~write:false;
    v
  with
  | M.Fault.Mem_manage info -> (
    let desc = Access_load { addr; width } in
    t.last_fault <- Some (desc, info);
    match t.handler.on_mem_fault desc info with
    | Retry -> checked_load t addr width
    | Abort msg -> raise (Aborted msg))
  | M.Fault.Bus info -> (
    let desc = Access_load { addr; width } in
    t.last_fault <- Some (desc, info);
    match t.handler.on_bus_fault desc info with
    | Emulated v -> v
    | Bus_abort msg -> raise (Aborted msg))

let rec checked_store t addr width v =
  try
    M.Bus.write t.bus addr width v;
    Trace.record_access t.trace ~addr ~write:true
  with
  | M.Fault.Mem_manage info -> (
    let desc = Access_store { addr; width; value = v } in
    t.last_fault <- Some (desc, info);
    match t.handler.on_mem_fault desc info with
    | Retry -> checked_store t addr width v
    | Abort msg -> raise (Aborted msg))
  | M.Fault.Bus info -> (
    let desc = Access_store { addr; width; value = v } in
    t.last_fault <- Some (desc, info);
    match t.handler.on_bus_fault desc info with
    | Emulated _ -> ()
    | Bus_abort msg -> raise (Aborted msg))

(* Region-routed variants for the compiled engine: [raw] is one of the
   bus fast paths ([Bus.read_sram], [Bus.read_device], ...) whose
   routing precondition the translator established.  Fault delivery is
   identical to [checked_load]/[checked_store]; a [Retry] re-executes
   the same fast path (the monitor fixed the MPU, the routing still
   holds). *)
let rec routed_load t raw addr width =
  try
    let v = raw t.bus addr width in
    Trace.record_access t.trace ~addr ~write:false;
    v
  with
  | M.Fault.Mem_manage info -> (
    let desc = Access_load { addr; width } in
    t.last_fault <- Some (desc, info);
    match t.handler.on_mem_fault desc info with
    | Retry -> routed_load t raw addr width
    | Abort msg -> raise (Aborted msg))
  | M.Fault.Bus info -> (
    let desc = Access_load { addr; width } in
    t.last_fault <- Some (desc, info);
    match t.handler.on_bus_fault desc info with
    | Emulated v -> v
    | Bus_abort msg -> raise (Aborted msg))

let rec routed_store t raw addr width v =
  try
    raw t.bus addr width v;
    Trace.record_access t.trace ~addr ~write:true
  with
  | M.Fault.Mem_manage info -> (
    let desc = Access_store { addr; width; value = v } in
    t.last_fault <- Some (desc, info);
    match t.handler.on_mem_fault desc info with
    | Retry -> routed_store t raw addr width v
    | Abort msg -> raise (Aborted msg))
  | M.Fault.Bus info -> (
    let desc = Access_store { addr; width; value = v } in
    t.last_fault <- Some (desc, info);
    match t.handler.on_bus_fault desc info with
    | Emulated _ -> ()
    | Bus_abort msg -> raise (Aborted msg))

(* SRAM-routed accesses, monomorphized: [routed_load t M.Bus.read_sram]
   would push [read_sram] through a generic three-argument apply on
   every access, so the SRAM case — the hottest by far — gets its own
   copies with direct calls. *)
let rec sram_load t addr width =
  try
    let v = M.Bus.read_sram t.bus addr width in
    Trace.record_access t.trace ~addr ~write:false;
    v
  with
  | M.Fault.Mem_manage info -> (
    let desc = Access_load { addr; width } in
    t.last_fault <- Some (desc, info);
    match t.handler.on_mem_fault desc info with
    | Retry -> sram_load t addr width
    | Abort msg -> raise (Aborted msg))
  | M.Fault.Bus info -> (
    let desc = Access_load { addr; width } in
    t.last_fault <- Some (desc, info);
    match t.handler.on_bus_fault desc info with
    | Emulated v -> v
    | Bus_abort msg -> raise (Aborted msg))

let rec sram_store t addr width v =
  try
    M.Bus.write_sram t.bus addr width v;
    Trace.record_access t.trace ~addr ~write:true
  with
  | M.Fault.Mem_manage info -> (
    let desc = Access_store { addr; width; value = v } in
    t.last_fault <- Some (desc, info);
    match t.handler.on_mem_fault desc info with
    | Retry -> sram_store t addr width v
    | Abort msg -> raise (Aborted msg))
  | M.Fault.Bus info -> (
    let desc = Access_store { addr; width; value = v } in
    t.last_fault <- Some (desc, info);
    match t.handler.on_bus_fault desc info with
    | Emulated _ -> ()
    | Bus_abort msg -> raise (Aborted msg))

(* --- instruction execution (tree engine) ------------------------------- *)

let spill_threshold = 4 (* first four arguments travel in registers *)

let rec exec_block t env block =
  List.iter (exec_instr t env) block

and exec_instr t env instr =
  if t.fuel <= 0 then raise Fuel_exhausted;
  t.fuel <- t.fuel - 1;
  M.Cpu.charge (cpu t) 1;
  match instr with
  | Instr.Nop -> ()
  | Instr.Let (x, e) -> Env.set env x (eval t env e)
  | Instr.Load (x, w, a) ->
    let addr = Int64.to_int (eval t env a) in
    Env.set env x (checked_load t addr (Instr.width_bytes w))
  | Instr.Store (w, a, v) ->
    let addr = Int64.to_int (eval t env a) in
    let v = eval t env v in
    checked_store t addr (Instr.width_bytes w) v
  | Instr.Alloca (x, ty) ->
    let c = cpu t in
    let size = (Ty.size_of ty + 7) land lnot 7 in
    let sp = c.M.Cpu.sp - size in
    if sp < c.M.Cpu.stack_base then raise (Aborted "stack overflow");
    c.M.Cpu.sp <- sp;
    Env.set env x (Int64.of_int sp)
  | Instr.Call (dst, callee, args) ->
    let fname =
      match callee with
      | Instr.Direct f -> f
      | Instr.Indirect e ->
        let addr = Int64.to_int (eval t env e) in
        (match t.map.Address_map.func_of_addr addr with
        | Some f -> f
        | None ->
          raise
            (Aborted (Printf.sprintf "indirect call to non-function 0x%08X" addr)))
    in
    let argv = List.map (eval t env) args in
    let ret = call t fname argv in
    Option.iter (fun x -> Env.set env x ret) dst
  | Instr.If (c, a, b) ->
    if truthy (eval t env c) then exec_block t env a else exec_block t env b
  | Instr.While (c, body) ->
    let rec loop () =
      if t.fuel <= 0 then raise Fuel_exhausted;
      if truthy (eval t env c) then begin
        exec_block t env body;
        loop ()
      end
    in
    loop ()
  | Instr.Return e ->
    let v = match e with None -> 0L | Some e -> eval t env e in
    raise (Returning v)
  | Instr.Memcpy (d, s, n) ->
    let dst = Int64.to_int (eval t env d) in
    let src = Int64.to_int (eval t env s) in
    let len = Int64.to_int (eval t env n) in
    let rec go off =
      if off < len then begin
        let w = if len - off >= 4 && (dst + off) land 3 = 0 && (src + off) land 3 = 0 then 4 else 1 in
        checked_store t (dst + off) w (checked_load t (src + off) w);
        go (off + w)
      end
    in
    go 0
  | Instr.Memset (d, v, n) ->
    let dst = Int64.to_int (eval t env d) in
    let v = eval t env v in
    let len = Int64.to_int (eval t env n) in
    let word =
      let b = Int64.logand v 0xFFL in
      List.fold_left
        (fun acc sh -> Int64.logor acc (Int64.shift_left b sh))
        0L [ 0; 8; 16; 24 ]
    in
    let rec go off =
      if off < len then begin
        let w = if len - off >= 4 && (dst + off) land 3 = 0 then 4 else 1 in
        checked_store t (dst + off) w (if w = 4 then word else v);
        go (off + w)
      end
    in
    go 0
  | Instr.Svc n -> t.handler.on_svc n
  | Instr.Halt -> raise Halted

(* --- function calls (tree engine) --------------------------------------- *)

and call t fname argv =
  let f =
    match Program.String_map.find_opt fname t.funcs with
    | Some f -> f
    | None -> raise (Aborted ("call to undefined function " ^ fname))
  in
  (* instruction-fetch permission for the callee's first instruction *)
  (try M.Bus.check_execute t.bus (t.map.Address_map.func_addr fname)
   with
  | M.Fault.Mem_manage info | M.Fault.Bus info ->
    raise (Aborted (Fmt.str "execute fault entering %s: %a" fname M.Fault.pp_info info)));
  if t.depth >= t.max_depth then raise (Aborted "call depth exceeded");
  if Hashtbl.mem t.entries fname then call_operation t f argv
  else call_plain t f argv

and call_plain t (f : Func.t) argv =
  let c = cpu t in
  let saved_sp = c.M.Cpu.sp in
  (* arguments beyond the register set travel on the caller's stack *)
  let argv = Array.of_list argv in
  spill t argv;
  M.Cpu.charge c 2;
  Trace.record t.trace (Trace.Call f.name);
  t.depth <- t.depth + 1;
  let env = Env.create () in
  List.iteri
    (fun i (x, _ty) ->
      Env.set env x (if i < Array.length argv then argv.(i) else 0L))
    f.params;
  let ret =
    match exec_block t env f.body with
    | () -> 0L
    | exception Returning v -> v
  in
  t.depth <- t.depth - 1;
  Trace.record t.trace (Trace.Return f.name);
  c.M.Cpu.sp <- saved_sp;
  ret

(* Operation switch protocol: SVC trap in, run entry, SVC trap out. *)
and call_operation t (f : Func.t) argv =
  let c = cpu t in
  let saved_sp = c.M.Cpu.sp in
  M.Cpu.charge c 4 (* SVC entry/exit pipeline cost *);
  let argv = Array.of_list argv in
  let argv' =
    M.Cpu.with_privilege c (fun () -> t.handler.on_operation_enter ~entry:f ~args:argv)
  in
  svc_mark t Obs.Sink.Enter f.name;
  Trace.record t.trace (Trace.Op_enter f.name);
  t.depth <- t.depth + 1;
  let env = Env.create () in
  List.iteri
    (fun i (x, _ty) ->
      Env.set env x (if i < Array.length argv' then argv'.(i) else 0L))
    f.params;
  let finish () =
    M.Cpu.charge c 4;
    M.Cpu.with_privilege c (fun () -> t.handler.on_operation_exit ~entry:f);
    (* the exit trap is a switch too — keep this count in lockstep with
       the monitor's [Stats.switches], which counts both directions *)
    svc_mark t Obs.Sink.Exit f.name;
    t.depth <- t.depth - 1;
    Trace.record t.trace (Trace.Op_exit f.name);
    c.M.Cpu.sp <- saved_sp
  in
  match exec_block t env f.body with
  | () -> finish (); 0L
  | exception Returning v -> finish (); v
  | exception e -> finish (); raise e

(* Spill arguments beyond the register set onto the caller's stack and
   read them back, exactly as the callee's prologue would. *)
and spill t (argv : int64 array) =
  let c = cpu t in
  let spill_count = max 0 (Array.length argv - spill_threshold) in
  if spill_count > 0 then begin
    let base = c.M.Cpu.sp - (spill_count * 4) in
    if base < c.M.Cpu.stack_base then raise (Aborted "stack overflow");
    c.M.Cpu.sp <- base;
    for i = 0 to spill_count - 1 do
      checked_store t (base + (i * 4)) 4 argv.(spill_threshold + i)
    done;
    (* the callee reads them back *)
    for i = 0 to spill_count - 1 do
      argv.(spill_threshold + i) <- checked_load t (base + (i * 4)) 4
    done
  end

(* --- decoded engine ----------------------------------------------------- *)

(* A call target resolved once: the decoded code, the code address for
   the execute check, and whether the callee is an operation entry.
   Direct calls cache this in the call site's closure after the first
   call, so the hot path performs no string hashing at all. *)
type dtarget = {
  dt_func : dfunc;
  dt_addr : int;
  dt_entry : bool;
}

(* Calls between decoded functions: same protocol as the tree engine but
   over decoded activation frames; argument vectors are already arrays. *)
let rec dresolve t fname =
  match Hashtbl.find_opt t.dfuncs fname with
  | None -> raise (Aborted ("call to undefined function " ^ fname))
  | Some df ->
    { dt_func = df;
      dt_addr = t.map.Address_map.func_addr fname;
      dt_entry = Hashtbl.mem t.entries fname }

and dcall_target t dt (argv : int64 array) =
  (try M.Bus.check_execute t.bus dt.dt_addr
   with
  | M.Fault.Mem_manage info | M.Fault.Bus info ->
    raise
      (Aborted
         (Fmt.str "execute fault entering %s: %a" dt.dt_func.df_func.Func.name
            M.Fault.pp_info info)));
  if t.depth >= t.max_depth then raise (Aborted "call depth exceeded");
  if dt.dt_entry then dcall_operation t dt.dt_func argv
  else dcall_plain t dt.dt_func argv

and dcall t fname (argv : int64 array) = dcall_target t (dresolve t fname) argv

and dframe df (argv : int64 array) =
  let fr =
    { regs = Array.make df.df_nslots 0L; def = Bytes.make df.df_nslots '\000' }
  in
  let n = Array.length argv in
  for i = 0 to df.df_nparams - 1 do
    fr.regs.(i) <- (if i < n then argv.(i) else 0L);
    Bytes.unsafe_set fr.def i '\001'
  done;
  fr

and dexec_body body fr =
  let n = Array.length (body : (frame -> unit) array) in
  for i = 0 to n - 1 do (Array.unsafe_get body i) fr done

and dcall_plain t df (argv : int64 array) =
  let c = cpu t in
  let saved_sp = c.M.Cpu.sp in
  spill t argv;
  M.Cpu.charge c 2;
  Trace.record t.trace (Trace.Call df.df_func.Func.name);
  t.depth <- t.depth + 1;
  let fr = dframe df argv in
  let ret =
    match dexec_body df.df_body fr with
    | () -> 0L
    | exception Returning v -> v
  in
  t.depth <- t.depth - 1;
  Trace.record t.trace (Trace.Return df.df_func.Func.name);
  c.M.Cpu.sp <- saved_sp;
  ret

and dcall_operation t df (argv : int64 array) =
  let c = cpu t in
  let saved_sp = c.M.Cpu.sp in
  M.Cpu.charge c 4 (* SVC entry/exit pipeline cost *);
  let f = df.df_func in
  let argv' =
    M.Cpu.with_privilege c (fun () -> t.handler.on_operation_enter ~entry:f ~args:argv)
  in
  svc_mark t Obs.Sink.Enter f.Func.name;
  Trace.record t.trace (Trace.Op_enter f.Func.name);
  t.depth <- t.depth + 1;
  let fr = dframe df argv' in
  let finish () =
    M.Cpu.charge c 4;
    M.Cpu.with_privilege c (fun () -> t.handler.on_operation_exit ~entry:f);
    (* exit trap counts too; see [call_operation] *)
    svc_mark t Obs.Sink.Exit f.Func.name;
    t.depth <- t.depth - 1;
    Trace.record t.trace (Trace.Op_exit f.Func.name);
    c.M.Cpu.sp <- saved_sp
  in
  match dexec_body df.df_body fr with
  | () -> finish (); 0L
  | exception Returning v -> finish (); v
  | exception e -> finish (); raise e

(* Decode one function: assign every local name a slot (parameters
   first, then names in order of appearance) and compile the body to
   closures.

   Cycle accounting is batched: expression closures themselves charge
   nothing; each instruction closure charges, up front, the one cycle
   the tree walker's dispatch charges plus one cycle per expression node
   the instruction is about to evaluate.  Expressions never touch the
   bus (loads are instructions), so at every observable point — a bus
   access, an operation switch, an SVC — the cumulative count is
   bit-identical to the tree engine's node-by-node charging.  The only
   divergence window is a run aborting *inside* an expression (division
   by zero, read of a never-assigned local): the batched count is then
   ahead by the nodes that never evaluated.  Such a run dies on the
   spot, and no evaluation artifact compares cycle counts of aborted
   runs across engines.

   Direct call sites resolve their target (decoded code, code address,
   entry bit) once, on first execution, and cache it in the closure —
   no string hashing on the call hot path. *)
let decode t (f : Func.t) : dfunc =
  let c = cpu t in
  let slots = Hashtbl.create 16 in
  let nslots = ref 0 in
  let slot x =
    match Hashtbl.find_opt slots x with
    | Some i -> i
    | None ->
      let i = !nslots in
      incr nslots;
      Hashtbl.add slots x i;
      i
  in
  List.iter (fun (x, _ty) -> ignore (slot x)) f.Func.params;
  (* [dexpr e] is the uncharged evaluation closure and the node count
     of [e] — the cycles its evaluation owes, charged by the enclosing
     instruction. *)
  let rec dexpr (e : Expr.t) : (frame -> int64) * int =
    match e with
    | Expr.Const n -> ((fun _fr -> n), 1)
    | Expr.Local x ->
      let i = slot x in
      ( (fun fr ->
          if Bytes.unsafe_get fr.def i = '\000' then
            raise
              (M.Fault.Usage (Printf.sprintf "use of undefined local %s" x))
          else Array.unsafe_get fr.regs i),
        1 )
    | Expr.Global_addr g -> (
      (* resolve at decode time when possible; an unknown name keeps
         the tree engine's fault-at-evaluation behaviour *)
      match Int64.of_int (t.map.Address_map.global_addr g) with
      | addr -> ((fun _fr -> addr), 1)
      | exception _ ->
        ((fun _fr -> Int64.of_int (t.map.Address_map.global_addr g)), 1))
    | Expr.Func_addr fn -> (
      match Int64.of_int (t.map.Address_map.func_addr fn) with
      | addr -> ((fun _fr -> addr), 1)
      | exception _ ->
        ((fun _fr -> Int64.of_int (t.map.Address_map.func_addr fn)), 1))
    | Expr.Un (Expr.Neg, a) ->
      let ka, wa = dexpr a in
      ((fun fr -> Int64.neg (ka fr)), wa + 1)
    | Expr.Un (Expr.Not, a) ->
      let ka, wa = dexpr a in
      ((fun fr -> Int64.lognot (ka fr)), wa + 1)
    | Expr.Bin (op, a, b) ->
      let ka, wa = dexpr a in
      let kb, wb = dexpr b in
      let w = wa + wb + 1 in
      (* specialize the operator at decode time: no dispatch and no
         option allocation per evaluation *)
      let k =
        match op with
        | Expr.Add -> fun fr -> Int64.add (ka fr) (kb fr)
        | Expr.Sub -> fun fr -> Int64.sub (ka fr) (kb fr)
        | Expr.Mul -> fun fr -> Int64.mul (ka fr) (kb fr)
        | Expr.Div ->
          fun fr ->
            let va = ka fr in
            let vb = kb fr in
            if Int64.equal vb 0L then
              raise (M.Fault.Usage "division by zero")
            else Int64.div va vb
        | Expr.Rem ->
          fun fr ->
            let va = ka fr in
            let vb = kb fr in
            if Int64.equal vb 0L then
              raise (M.Fault.Usage "division by zero")
            else Int64.rem va vb
        | Expr.And -> fun fr -> Int64.logand (ka fr) (kb fr)
        | Expr.Or -> fun fr -> Int64.logor (ka fr) (kb fr)
        | Expr.Xor -> fun fr -> Int64.logxor (ka fr) (kb fr)
        | Expr.Shl ->
          fun fr ->
            let va = ka fr in
            let vb = kb fr in
            Int64.shift_left va (Int64.to_int vb land 63)
        | Expr.Shr ->
          fun fr ->
            let va = ka fr in
            let vb = kb fr in
            Int64.shift_right_logical va (Int64.to_int vb land 63)
        | Expr.Eq -> fun fr -> if Int64.equal (ka fr) (kb fr) then 1L else 0L
        | Expr.Ne ->
          fun fr -> if Int64.equal (ka fr) (kb fr) then 0L else 1L
        | Expr.Lt ->
          fun fr -> if Int64.compare (ka fr) (kb fr) < 0 then 1L else 0L
        | Expr.Le ->
          fun fr -> if Int64.compare (ka fr) (kb fr) <= 0 then 1L else 0L
        | Expr.Gt ->
          fun fr -> if Int64.compare (ka fr) (kb fr) > 0 then 1L else 0L
        | Expr.Ge ->
          fun fr -> if Int64.compare (ka fr) (kb fr) >= 0 then 1L else 0L
      in
      (k, w)
  in
  let set fr i v =
    Array.unsafe_set fr.regs i v;
    Bytes.unsafe_set fr.def i '\001'
  in
  (* the per-instruction prologue: the tree walker's fuel/dispatch cost
     plus the batched cycles of the instruction's expressions *)
  let pre w =
    if t.fuel <= 0 then raise Fuel_exhausted;
    t.fuel <- t.fuel - 1;
    M.Cpu.charge c w
  in
  let rec dinstr (instr : Instr.t) : frame -> unit =
    match instr with
    | Instr.Nop -> fun _fr -> pre 1
    | Instr.Let (x, e) ->
      let i = slot x in
      let ke, we = dexpr e in
      let w = we + 1 in
      fun fr -> pre w; set fr i (ke fr)
    | Instr.Load (x, w, a) ->
      let i = slot x in
      let ka, wa = dexpr a in
      let width = Instr.width_bytes w in
      let w = wa + 1 in
      fun fr ->
        pre w;
        let addr = Int64.to_int (ka fr) in
        set fr i (checked_load t addr width)
    | Instr.Store (w, a, v) ->
      let ka, wa = dexpr a in
      let kv, wv = dexpr v in
      let width = Instr.width_bytes w in
      let w = wa + wv + 1 in
      fun fr ->
        pre w;
        let addr = Int64.to_int (ka fr) in
        let v = kv fr in
        checked_store t addr width v
    | Instr.Alloca (x, ty) ->
      let i = slot x in
      let size = (Ty.size_of ty + 7) land lnot 7 in
      fun fr ->
        pre 1;
        let sp = c.M.Cpu.sp - size in
        if sp < c.M.Cpu.stack_base then raise (Aborted "stack overflow");
        c.M.Cpu.sp <- sp;
        set fr i (Int64.of_int sp)
    | Instr.Call (dst, callee, args) ->
      let kargs_l = List.map dexpr args in
      let kargs = Array.of_list (List.map fst kargs_l) in
      let wargs = List.fold_left (fun acc (_, w) -> acc + w) 0 kargs_l in
      let idst = Option.map slot dst in
      let eval_args fr =
        let n = Array.length kargs in
        let argv = Array.make n 0L in
        for i = 0 to n - 1 do
          Array.unsafe_set argv i ((Array.unsafe_get kargs i) fr)
        done;
        argv
      in
      (match callee with
      | Instr.Direct fname ->
        let w = wargs + 1 in
        let target = ref None in
        fun fr ->
          pre w;
          let argv = eval_args fr in
          let dt =
            match !target with
            | Some dt -> dt
            | None ->
              let dt = dresolve t fname in
              target := Some dt;
              dt
          in
          let ret = dcall_target t dt argv in
          (match idst with Some i -> set fr i ret | None -> ())
      | Instr.Indirect e ->
        let ke, we = dexpr e in
        let w = wargs + we + 1 in
        fun fr ->
          pre w;
          let addr = Int64.to_int (ke fr) in
          let fname =
            match t.map.Address_map.func_of_addr addr with
            | Some f -> f
            | None ->
              raise
                (Aborted
                   (Printf.sprintf "indirect call to non-function 0x%08X" addr))
          in
          let argv = eval_args fr in
          let ret = dcall t fname argv in
          (match idst with Some i -> set fr i ret | None -> ()))
    | Instr.If (cond, a, b) ->
      let kc, wc = dexpr cond in
      let ka = dblock a in
      let kb = dblock b in
      let w = wc + 1 in
      fun fr ->
        pre w;
        if truthy (kc fr) then dexec_body ka fr else dexec_body kb fr
    | Instr.While (cond, body) ->
      let kc, wc = dexpr cond in
      let kb = dblock body in
      fun fr ->
        pre 1;
        let rec loop () =
          if t.fuel <= 0 then raise Fuel_exhausted;
          M.Cpu.charge c wc;
          if truthy (kc fr) then begin
            dexec_body kb fr;
            loop ()
          end
        in
        loop ()
    | Instr.Return e ->
      let ke = match e with None -> None | Some e -> Some (dexpr e) in
      let w = match ke with None -> 1 | Some (_, we) -> we + 1 in
      let ke = Option.map fst ke in
      fun fr ->
        pre w;
        let v = match ke with None -> 0L | Some k -> k fr in
        raise (Returning v)
    | Instr.Memcpy (d, s, n) ->
      let kd, wd = dexpr d in
      let ks, ws = dexpr s in
      let kn, wn = dexpr n in
      let w = wd + ws + wn + 1 in
      fun fr ->
        pre w;
        let dst = Int64.to_int (kd fr) in
        let src = Int64.to_int (ks fr) in
        let len = Int64.to_int (kn fr) in
        let rec go off =
          if off < len then begin
            let w =
              if len - off >= 4 && (dst + off) land 3 = 0 && (src + off) land 3 = 0
              then 4
              else 1
            in
            checked_store t (dst + off) w (checked_load t (src + off) w);
            go (off + w)
          end
        in
        go 0
    | Instr.Memset (d, v, n) ->
      let kd, wd = dexpr d in
      let kv, wv = dexpr v in
      let kn, wn = dexpr n in
      let w = wd + wv + wn + 1 in
      fun fr ->
        pre w;
        let dst = Int64.to_int (kd fr) in
        let v = kv fr in
        let len = Int64.to_int (kn fr) in
        let word =
          let b = Int64.logand v 0xFFL in
          List.fold_left
            (fun acc sh -> Int64.logor acc (Int64.shift_left b sh))
            0L [ 0; 8; 16; 24 ]
        in
        let rec go off =
          if off < len then begin
            let w = if len - off >= 4 && (dst + off) land 3 = 0 then 4 else 1 in
            checked_store t (dst + off) w (if w = 4 then word else v);
            go (off + w)
          end
        in
        go 0
    | Instr.Svc n -> fun _fr -> pre 1; t.handler.on_svc n
    | Instr.Halt -> fun _fr -> pre 1; raise Halted
  and dblock (block : Instr.block) : (frame -> unit) array =
    Array.of_list (List.map dinstr block)
  in
  let body = dblock f.Func.body in
  { df_func = f; df_nslots = !nslots; df_nparams = List.length f.Func.params;
    df_body = body }

(* --- compiled engine ---------------------------------------------------- *)

(* The closure-compiled engine.  Translation happens once, at image-load
   time, and removes every remaining dispatch from the hot path:

   - Expressions compile to a compile-time value classification [cval]:
     constants fold at translation time ([K]), reads of definitely-
     assigned locals become bare slot indices ([S]) inlined into the
     consuming closure (no closure call, no def-tag check), and only
     genuinely dynamic subtrees keep a closure ([F]).  Weights (node
     counts) are computed from the original tree, so batched cycle
     charges are bit-identical to the decoded engine's.
   - Runs of pure instructions (Let/Alloca/Nop — no bus access, no
     observable point) fuse into superblocks: one fuel check, one
     decrement of the whole run, one batched cycle charge.  When fuel
     cannot cover the run, an exact per-instruction slow path replicates
     the decoded engine's check/decrement/charge sequence so
     fuel-exhaustion falls on the same instruction with the same
     cumulative cycles.  Instructions with observable effects (loads,
     stores, calls, SVCs, control flow) charge individually, exactly as
     [decode] does, so the count at every observable point matches.
   - Direct call sites bind the callee's [cfunc] record at translation
     time (records for all functions exist before bodies compile);
     indirect sites keep a one-entry inline cache keyed by the code
     address.  Functions whose only [Return] is the final instruction
     of the top-level block return the value directly instead of
     raising [Returning].
   - Loads and stores whose address folds at translation time route
     straight to the owning region (SRAM/flash/device window) through
     the bus fast paths; dynamic addresses probe the SRAM range first.
     Both paths charge, MPU-check, trace, and fault exactly like the
     generic decode.

   The trap protocol (operation entry/exit, SVC marks, telemetry) is
   byte-for-byte the decoded engine's: superblocks never span a call or
   an SVC, so monitor activity interleaves with block charges exactly as
   it does with per-instruction charges. *)

module Str_set = Set.Make (String)

(* Conservative definite-assignment analysis: [true] when every [Local]
   read in [f] is preceded by a write on all paths, so activations skip
   the [def] bookkeeping entirely.  Functions that fail the analysis
   (the fuzz generator can produce a read of a never-assigned local)
   keep the decoded engine's checked frames, fault message included. *)
let definitely_assigned (f : Func.t) =
  let ok = ref true in
  let rec expr defined (e : Expr.t) =
    match e with
    | Expr.Const _ | Expr.Global_addr _ | Expr.Func_addr _ -> ()
    | Expr.Local x -> if not (Str_set.mem x defined) then ok := false
    | Expr.Un (_, a) -> expr defined a
    | Expr.Bin (_, a, b) ->
      expr defined a;
      expr defined b
  in
  let rec block defined instrs = List.fold_left instr defined instrs
  and instr defined (i : Instr.t) =
    match i with
    | Instr.Nop | Instr.Svc _ | Instr.Halt -> defined
    | Instr.Let (x, e) ->
      expr defined e;
      Str_set.add x defined
    | Instr.Load (x, _, a) ->
      expr defined a;
      Str_set.add x defined
    | Instr.Store (_, a, v) ->
      expr defined a;
      expr defined v;
      defined
    | Instr.Alloca (x, _) -> Str_set.add x defined
    | Instr.Call (dst, callee, args) ->
      (match callee with
      | Instr.Direct _ -> ()
      | Instr.Indirect e -> expr defined e);
      List.iter (expr defined) args;
      (match dst with Some x -> Str_set.add x defined | None -> defined)
    | Instr.If (c, a, b) ->
      expr defined c;
      Str_set.inter (block defined a) (block defined b)
    | Instr.While (c, body) ->
      (* the condition's first evaluation sees only pre-loop defs *)
      expr defined c;
      ignore (block defined body);
      defined
    | Instr.Return e ->
      (match e with None -> () | Some e -> expr defined e);
      defined
    | Instr.Memcpy (a, b, n) | Instr.Memset (a, b, n) ->
      expr defined a;
      expr defined b;
      expr defined n;
      defined
  in
  let params =
    List.fold_left (fun s (x, _ty) -> Str_set.add x s) Str_set.empty
      f.Func.params
  in
  ignore (block params f.Func.body);
  !ok

let rec block_returns instrs = List.exists instr_returns instrs

and instr_returns (i : Instr.t) =
  match i with
  | Instr.Return _ -> true
  | Instr.If (_, a, b) -> block_returns a || block_returns b
  | Instr.While (_, body) -> block_returns body
  | Instr.Nop | Instr.Let _ | Instr.Load _ | Instr.Store _ | Instr.Alloca _
  | Instr.Call _ | Instr.Memcpy _ | Instr.Memset _ | Instr.Svc _ | Instr.Halt
    -> false

(* Split a trailing top-level [Return] off the body, for the
   direct-return compilation of straight-line functions. *)
let rec split_tail acc (block : Instr.block) =
  match block with
  | [ Instr.Return e ] -> Some (List.rev acc, e)
  | [] -> None
  | x :: rest -> split_tail (x :: acc) rest

(* Compile-time classification of an expression operand. *)
type cval =
  | K of int64                 (* folded constant *)
  | S of int                   (* definitely-assigned local slot *)
  | F of (frame -> int64)      (* dynamic *)

(* The native-int mirror of [cval], for the address compiler. *)
type cival =
  | IK of int
  | IS of int
  | IF of (frame -> int)

let force = function
  | K v -> fun _fr -> v
  | S i -> fun fr -> Array.unsafe_get fr.regs i
  | F k -> k

(* The operator's meaning as a plain function; [Div]/[Rem] keep the
   usage-fault check, evaluated after both operands like the other
   engines. *)
let bin_fn : Expr.binop -> int64 -> int64 -> int64 = function
  | Expr.Add -> Int64.add
  | Expr.Sub -> Int64.sub
  | Expr.Mul -> Int64.mul
  | Expr.Div ->
    fun a b ->
      if Int64.equal b 0L then raise (M.Fault.Usage "division by zero")
      else Int64.div a b
  | Expr.Rem ->
    fun a b ->
      if Int64.equal b 0L then raise (M.Fault.Usage "division by zero")
      else Int64.rem a b
  | Expr.And -> Int64.logand
  | Expr.Or -> Int64.logor
  | Expr.Xor -> Int64.logxor
  | Expr.Shl -> fun a b -> Int64.shift_left a (Int64.to_int b land 63)
  | Expr.Shr -> fun a b -> Int64.shift_right_logical a (Int64.to_int b land 63)
  | Expr.Eq -> fun a b -> if Int64.equal a b then 1L else 0L
  | Expr.Ne -> fun a b -> if Int64.equal a b then 0L else 1L
  | Expr.Lt -> fun a b -> if Int64.compare a b < 0 then 1L else 0L
  | Expr.Le -> fun a b -> if Int64.compare a b <= 0 then 1L else 0L
  | Expr.Gt -> fun a b -> if Int64.compare a b > 0 then 1L else 0L
  | Expr.Ge -> fun a b -> if Int64.compare a b >= 0 then 1L else 0L

(* Apply [g] to two operands, inlining constant and slot leaves into the
   shape-specialized closure — the closure-call count per binop drops
   from one per node to at most one per dynamic subtree. *)
let shape2 (g : int64 -> int64 -> int64) a b : frame -> int64 =
  match (a, b) with
  | K x, K y ->
    let v = g x y in
    fun _fr -> v
  | K x, S j -> fun fr -> g x (Array.unsafe_get fr.regs j)
  | K x, F kb -> fun fr -> g x (kb fr)
  | S i, K y -> fun fr -> g (Array.unsafe_get fr.regs i) y
  | S i, S j ->
    fun fr -> g (Array.unsafe_get fr.regs i) (Array.unsafe_get fr.regs j)
  | S i, F kb -> fun fr -> g (Array.unsafe_get fr.regs i) (kb fr)
  | F ka, K y -> fun fr -> g (ka fr) y
  | F ka, S j -> fun fr -> g (ka fr) (Array.unsafe_get fr.regs j)
  | F ka, F kb -> fun fr -> g (ka fr) (kb fr)

(* The hot arithmetic/logic operators get fully specialized closures —
   the operator applied directly in each operand-shape case, with no
   call through a function value (without flambda, [shape2 (bin_fn op)]
   pays a generic two-argument apply per evaluation).  The mechanical
   repetition is the point: each case compiles to a closure whose body
   is one primitive on preloaded operands. *)
let cbin op a b : frame -> int64 =
  match op with
  | Expr.Add -> (
    match (a, b) with
    | S i, K y -> fun fr -> Int64.add (Array.unsafe_get fr.regs i) y
    | K x, S j -> fun fr -> Int64.add x (Array.unsafe_get fr.regs j)
    | S i, S j ->
      fun fr ->
        Int64.add (Array.unsafe_get fr.regs i) (Array.unsafe_get fr.regs j)
    | S i, F kb -> fun fr -> Int64.add (Array.unsafe_get fr.regs i) (kb fr)
    | F ka, S j -> fun fr -> Int64.add (ka fr) (Array.unsafe_get fr.regs j)
    | K x, F kb -> fun fr -> Int64.add x (kb fr)
    | F ka, K y -> fun fr -> Int64.add (ka fr) y
    | F ka, F kb -> fun fr -> Int64.add (ka fr) (kb fr)
    | (K _ as a), (K _ as b) -> shape2 Int64.add a b)
  | Expr.Sub -> (
    match (a, b) with
    | S i, K y -> fun fr -> Int64.sub (Array.unsafe_get fr.regs i) y
    | K x, S j -> fun fr -> Int64.sub x (Array.unsafe_get fr.regs j)
    | S i, S j ->
      fun fr ->
        Int64.sub (Array.unsafe_get fr.regs i) (Array.unsafe_get fr.regs j)
    | S i, F kb -> fun fr -> Int64.sub (Array.unsafe_get fr.regs i) (kb fr)
    | F ka, S j -> fun fr -> Int64.sub (ka fr) (Array.unsafe_get fr.regs j)
    | K x, F kb -> fun fr -> Int64.sub x (kb fr)
    | F ka, K y -> fun fr -> Int64.sub (ka fr) y
    | F ka, F kb -> fun fr -> Int64.sub (ka fr) (kb fr)
    | (K _ as a), (K _ as b) -> shape2 Int64.sub a b)
  | Expr.Mul -> (
    match (a, b) with
    | S i, K y -> fun fr -> Int64.mul (Array.unsafe_get fr.regs i) y
    | K x, S j -> fun fr -> Int64.mul x (Array.unsafe_get fr.regs j)
    | S i, S j ->
      fun fr ->
        Int64.mul (Array.unsafe_get fr.regs i) (Array.unsafe_get fr.regs j)
    | S i, F kb -> fun fr -> Int64.mul (Array.unsafe_get fr.regs i) (kb fr)
    | F ka, S j -> fun fr -> Int64.mul (ka fr) (Array.unsafe_get fr.regs j)
    | K x, F kb -> fun fr -> Int64.mul x (kb fr)
    | F ka, K y -> fun fr -> Int64.mul (ka fr) y
    | F ka, F kb -> fun fr -> Int64.mul (ka fr) (kb fr)
    | (K _ as a), (K _ as b) -> shape2 Int64.mul a b)
  | Expr.And -> (
    match (a, b) with
    | S i, K y -> fun fr -> Int64.logand (Array.unsafe_get fr.regs i) y
    | K x, S j -> fun fr -> Int64.logand x (Array.unsafe_get fr.regs j)
    | S i, S j ->
      fun fr ->
        Int64.logand (Array.unsafe_get fr.regs i) (Array.unsafe_get fr.regs j)
    | S i, F kb -> fun fr -> Int64.logand (Array.unsafe_get fr.regs i) (kb fr)
    | F ka, S j -> fun fr -> Int64.logand (ka fr) (Array.unsafe_get fr.regs j)
    | K x, F kb -> fun fr -> Int64.logand x (kb fr)
    | F ka, K y -> fun fr -> Int64.logand (ka fr) y
    | F ka, F kb -> fun fr -> Int64.logand (ka fr) (kb fr)
    | (K _ as a), (K _ as b) -> shape2 Int64.logand a b)
  | Expr.Or -> (
    match (a, b) with
    | S i, K y -> fun fr -> Int64.logor (Array.unsafe_get fr.regs i) y
    | K x, S j -> fun fr -> Int64.logor x (Array.unsafe_get fr.regs j)
    | S i, S j ->
      fun fr ->
        Int64.logor (Array.unsafe_get fr.regs i) (Array.unsafe_get fr.regs j)
    | S i, F kb -> fun fr -> Int64.logor (Array.unsafe_get fr.regs i) (kb fr)
    | F ka, S j -> fun fr -> Int64.logor (ka fr) (Array.unsafe_get fr.regs j)
    | K x, F kb -> fun fr -> Int64.logor x (kb fr)
    | F ka, K y -> fun fr -> Int64.logor (ka fr) y
    | F ka, F kb -> fun fr -> Int64.logor (ka fr) (kb fr)
    | (K _ as a), (K _ as b) -> shape2 Int64.logor a b)
  | Expr.Xor -> (
    match (a, b) with
    | S i, K y -> fun fr -> Int64.logxor (Array.unsafe_get fr.regs i) y
    | K x, S j -> fun fr -> Int64.logxor x (Array.unsafe_get fr.regs j)
    | S i, S j ->
      fun fr ->
        Int64.logxor (Array.unsafe_get fr.regs i) (Array.unsafe_get fr.regs j)
    | S i, F kb -> fun fr -> Int64.logxor (Array.unsafe_get fr.regs i) (kb fr)
    | F ka, S j -> fun fr -> Int64.logxor (ka fr) (Array.unsafe_get fr.regs j)
    | K x, F kb -> fun fr -> Int64.logxor x (kb fr)
    | F ka, K y -> fun fr -> Int64.logxor (ka fr) y
    | F ka, F kb -> fun fr -> Int64.logxor (ka fr) (kb fr)
    | (K _ as a), (K _ as b) -> shape2 Int64.logxor a b)
  | Expr.Shl -> (
    match (a, b) with
    | S i, K y ->
      let sh = Int64.to_int y land 63 in
      fun fr -> Int64.shift_left (Array.unsafe_get fr.regs i) sh
    | F ka, K y ->
      let sh = Int64.to_int y land 63 in
      fun fr -> Int64.shift_left (ka fr) sh
    | a, b -> shape2 (bin_fn Expr.Shl) a b)
  | Expr.Shr -> (
    match (a, b) with
    | S i, K y ->
      let sh = Int64.to_int y land 63 in
      fun fr -> Int64.shift_right_logical (Array.unsafe_get fr.regs i) sh
    | F ka, K y ->
      let sh = Int64.to_int y land 63 in
      fun fr -> Int64.shift_right_logical (ka fr) sh
    | a, b -> shape2 (bin_fn Expr.Shr) a b)
  | (Expr.Div | Expr.Rem | Expr.Eq | Expr.Ne | Expr.Lt | Expr.Le | Expr.Gt
    | Expr.Ge) as op ->
    shape2 (bin_fn op) a b

(* A compiled call target, bound at translation time. *)
type ctarget = { ct_func : cfunc; ct_addr : int; ct_entry : bool }

let empty_argv : int64 array = [||]
let no_def = Bytes.create 0

let cframe cf (argv : int64 array) =
  let fr =
    { regs = Array.make cf.cf_nslots 0L;
      def = if cf.cf_checked then Bytes.make cf.cf_nslots '\000' else no_def }
  in
  let n = Array.length argv in
  for i = 0 to cf.cf_nparams - 1 do
    fr.regs.(i) <- (if i < n then argv.(i) else 0L)
  done;
  if cf.cf_checked then
    for i = 0 to cf.cf_nparams - 1 do
      Bytes.unsafe_set fr.def i '\001'
    done;
  fr

let rec cresolve t fname =
  match Hashtbl.find_opt t.cfuncs fname with
  | None -> raise (Aborted ("call to undefined function " ^ fname))
  | Some cf ->
    { ct_func = cf;
      ct_addr = t.map.Address_map.func_addr fname;
      ct_entry = Hashtbl.mem t.entries fname }

and ccall_target t ct (argv : int64 array) =
  (try M.Bus.check_execute t.bus ct.ct_addr
   with
  | M.Fault.Mem_manage info | M.Fault.Bus info ->
    raise
      (Aborted
         (Fmt.str "execute fault entering %s: %a" ct.ct_func.cf_func.Func.name
            M.Fault.pp_info info)));
  if t.depth >= t.max_depth then raise (Aborted "call depth exceeded");
  if ct.ct_entry then ccall_operation t ct.ct_func argv
  else ccall_plain t ct.ct_func argv

and ccall t fname (argv : int64 array) = ccall_target t (cresolve t fname) argv

and ccall_plain t cf (argv : int64 array) =
  let c = cpu t in
  let saved_sp = c.M.Cpu.sp in
  if Array.length argv > spill_threshold then spill t argv;
  M.Cpu.charge c 2;
  Trace.record t.trace (Trace.Call cf.cf_func.Func.name);
  t.depth <- t.depth + 1;
  let ret = cf.cf_entry (cframe cf argv) in
  t.depth <- t.depth - 1;
  Trace.record t.trace (Trace.Return cf.cf_func.Func.name);
  c.M.Cpu.sp <- saved_sp;
  ret

and ccall_operation t cf (argv : int64 array) =
  let c = cpu t in
  let saved_sp = c.M.Cpu.sp in
  M.Cpu.charge c 4 (* SVC entry/exit pipeline cost *);
  let f = cf.cf_func in
  let argv' =
    M.Cpu.with_privilege c (fun () ->
        t.handler.on_operation_enter ~entry:f ~args:argv)
  in
  svc_mark t Obs.Sink.Enter f.Func.name;
  Trace.record t.trace (Trace.Op_enter f.Func.name);
  t.depth <- t.depth + 1;
  let fr = cframe cf argv' in
  let finish () =
    M.Cpu.charge c 4;
    M.Cpu.with_privilege c (fun () -> t.handler.on_operation_exit ~entry:f);
    (* exit trap counts too; see [call_operation] *)
    svc_mark t Obs.Sink.Exit f.Func.name;
    t.depth <- t.depth - 1;
    Trace.record t.trace (Trace.Op_exit f.Func.name);
    c.M.Cpu.sp <- saved_sp
  in
  match cf.cf_entry fr with
  | v ->
    finish ();
    v
  | exception e ->
    finish ();
    raise e

(* A compiled instruction before superblock grouping: [Cpure] carries an
   uncharged effect plus its weight and is eligible for fusion; [Ctail]
   is an uncharged effect whose single bus access happens at its end, so
   it may terminate a fused run (every batched charge lands before the
   access executes, which is exactly the cumulative count the decoded
   engine shows at that access); [Cfull] charges for itself. *)
type cinstr =
  | Cpure of (frame -> unit) * int
  | Ctail of (frame -> unit) * int
  | Cfull of (frame -> unit)

(* Translate one function body into [cf_entry].  Mirrors [decode]'s
   accounting exactly; see the section comment for what it specializes. *)
let compile t (cf : cfunc) =
  let f = cf.cf_func in
  let c = cpu t in
  (* SRAM bounds as captured immediates: the dynamic-address load/store
     closures inline the range probe instead of chasing [t.bus.sram] *)
  let sram_lo, sram_hi =
    let m = t.bus.M.Bus.sram in
    (M.Memory.limit m - M.Memory.size m, M.Memory.limit m)
  in
  let checked = not (definitely_assigned f) in
  let slots = Hashtbl.create 16 in
  let nslots = ref 0 in
  let slot x =
    match Hashtbl.find_opt slots x with
    | Some i -> i
    | None ->
      let i = !nslots in
      incr nslots;
      Hashtbl.add slots x i;
      i
  in
  List.iter (fun (x, _ty) -> ignore (slot x)) f.Func.params;
  let rec cexpr (e : Expr.t) : cval * int =
    match e with
    | Expr.Const n -> (K n, 1)
    | Expr.Local x ->
      let i = slot x in
      if checked then
        ( F
            (fun fr ->
              if Bytes.unsafe_get fr.def i = '\000' then
                raise
                  (M.Fault.Usage
                     (Printf.sprintf "use of undefined local %s" x))
              else Array.unsafe_get fr.regs i),
          1 )
      else (S i, 1)
    | Expr.Global_addr g -> (
      match Int64.of_int (t.map.Address_map.global_addr g) with
      | addr -> (K addr, 1)
      | exception _ ->
        (F (fun _fr -> Int64.of_int (t.map.Address_map.global_addr g)), 1))
    | Expr.Func_addr fn -> (
      match Int64.of_int (t.map.Address_map.func_addr fn) with
      | addr -> (K addr, 1)
      | exception _ ->
        (F (fun _fr -> Int64.of_int (t.map.Address_map.func_addr fn)), 1))
    | Expr.Un (Expr.Neg, a) -> (
      let ca, wa = cexpr a in
      match ca with
      | K v -> (K (Int64.neg v), wa + 1)
      | S i -> (F (fun fr -> Int64.neg (Array.unsafe_get fr.regs i)), wa + 1)
      | F k -> (F (fun fr -> Int64.neg (k fr)), wa + 1))
    | Expr.Un (Expr.Not, a) -> (
      let ca, wa = cexpr a in
      match ca with
      | K v -> (K (Int64.lognot v), wa + 1)
      | S i ->
        (F (fun fr -> Int64.lognot (Array.unsafe_get fr.regs i)), wa + 1)
      | F k -> (F (fun fr -> Int64.lognot (k fr)), wa + 1))
    | Expr.Bin (op, a, b) -> (
      let ca, wa = cexpr a in
      let cb, wb = cexpr b in
      let w = wa + wb + 1 in
      match (ca, cb) with
      | K x, K y -> (
        match Expr.eval_bin op x y with
        | Some v -> (K v, w)
        | None ->
          (F (fun _fr -> raise (M.Fault.Usage "division by zero")), w))
      | _ -> (F (cbin op ca cb), w))
  in
  (* Branch/loop conditions compile straight to a boolean, skipping the
     1L/0L round-trip of a materialized comparison result.  [And]/[Or]
     over operands that only ever produce 0/1 (comparisons, or nested
     [And]/[Or] of such) fuse into boolean connectives: on 0/1 values
     bitwise and/or coincide with the boolean ones.  Both operands are
     still evaluated, right one first, like the decoded closures — the
     connectives do not short-circuit. *)
  let rec boolish (e : Expr.t) =
    match e with
    | Expr.Bin ((Expr.Eq | Expr.Ne | Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge), _, _)
      ->
      true
    | Expr.Bin ((Expr.And | Expr.Or), a, b) -> boolish a && boolish b
    | _ -> false
  in
  let rec cbool (e : Expr.t) : (frame -> bool) * int =
    match e with
    | Expr.Bin (Expr.And, a, b) when boolish a && boolish b ->
      let ka, wa = cbool a in
      let kb, wb = cbool b in
      ( (fun fr ->
          let vb = kb fr in
          ka fr && vb),
        wa + wb + 1 )
    | Expr.Bin (Expr.Or, a, b) when boolish a && boolish b ->
      let ka, wa = cbool a in
      let kb, wb = cbool b in
      ( (fun fr ->
          let vb = kb fr in
          ka fr || vb),
        wa + wb + 1 )
    | Expr.Bin
        ( ((Expr.Eq | Expr.Ne | Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge) as op),
          a,
          b ) -> (
      let ca, wa = cexpr a in
      let cb, wb = cexpr b in
      let w = wa + wb + 1 in
      match (ca, cb) with
      | K x, K y ->
        let r =
          match Expr.eval_bin op x y with Some v -> truthy v | None -> false
        in
        ((fun _fr -> r), w)
      | S i, K y ->
        let k =
          match op with
          | Expr.Eq -> fun fr -> Int64.equal (Array.unsafe_get fr.regs i) y
          | Expr.Ne ->
            fun fr -> not (Int64.equal (Array.unsafe_get fr.regs i) y)
          | Expr.Lt ->
            fun fr -> Int64.compare (Array.unsafe_get fr.regs i) y < 0
          | Expr.Le ->
            fun fr -> Int64.compare (Array.unsafe_get fr.regs i) y <= 0
          | Expr.Gt ->
            fun fr -> Int64.compare (Array.unsafe_get fr.regs i) y > 0
          | Expr.Ge ->
            fun fr -> Int64.compare (Array.unsafe_get fr.regs i) y >= 0
          | _ -> assert false
        in
        (k, w)
      | K x, S j ->
        let k =
          match op with
          | Expr.Eq -> fun fr -> Int64.equal x (Array.unsafe_get fr.regs j)
          | Expr.Ne ->
            fun fr -> not (Int64.equal x (Array.unsafe_get fr.regs j))
          | Expr.Lt ->
            fun fr -> Int64.compare x (Array.unsafe_get fr.regs j) < 0
          | Expr.Le ->
            fun fr -> Int64.compare x (Array.unsafe_get fr.regs j) <= 0
          | Expr.Gt ->
            fun fr -> Int64.compare x (Array.unsafe_get fr.regs j) > 0
          | Expr.Ge ->
            fun fr -> Int64.compare x (Array.unsafe_get fr.regs j) >= 0
          | _ -> assert false
        in
        (k, w)
      | S i, S j ->
        let k =
          match op with
          | Expr.Eq ->
            fun fr ->
              Int64.equal (Array.unsafe_get fr.regs i)
                (Array.unsafe_get fr.regs j)
          | Expr.Ne ->
            fun fr ->
              not
                (Int64.equal (Array.unsafe_get fr.regs i)
                   (Array.unsafe_get fr.regs j))
          | Expr.Lt ->
            fun fr ->
              Int64.compare (Array.unsafe_get fr.regs i)
                (Array.unsafe_get fr.regs j)
              < 0
          | Expr.Le ->
            fun fr ->
              Int64.compare (Array.unsafe_get fr.regs i)
                (Array.unsafe_get fr.regs j)
              <= 0
          | Expr.Gt ->
            fun fr ->
              Int64.compare (Array.unsafe_get fr.regs i)
                (Array.unsafe_get fr.regs j)
              > 0
          | Expr.Ge ->
            fun fr ->
              Int64.compare (Array.unsafe_get fr.regs i)
                (Array.unsafe_get fr.regs j)
              >= 0
          | _ -> assert false
        in
        (k, w)
      | ca, cb ->
        let fa = force ca in
        let fb = force cb in
        let k =
          match op with
          | Expr.Eq -> fun fr -> Int64.equal (fa fr) (fb fr)
          | Expr.Ne -> fun fr -> not (Int64.equal (fa fr) (fb fr))
          | Expr.Lt -> fun fr -> Int64.compare (fa fr) (fb fr) < 0
          | Expr.Le -> fun fr -> Int64.compare (fa fr) (fb fr) <= 0
          | Expr.Gt -> fun fr -> Int64.compare (fa fr) (fb fr) > 0
          | Expr.Ge -> fun fr -> Int64.compare (fa fr) (fb fr) >= 0
          | _ -> assert false
        in
        (k, w))
    | e -> (
      let cv, w = cexpr e in
      match cv with
      | K v ->
        let r = truthy v in
        ((fun _fr -> r), w)
      | S i ->
        ((fun fr -> not (Int64.equal (Array.unsafe_get fr.regs i) 0L)), w)
      | F k -> ((fun fr -> truthy (k fr)), w))
  in
  (* Address (and length) expressions compile straight into the
     native-int domain: the consumer only ever looks at
     [Int64.to_int addr], and truncation mod 2^63 is a ring homomorphism
     for + - * land lor lxor lognot neg — computing in int from the
     leaves up is exact, and unlike the boxed path it never allocates.
     Operators whose truncation does not commute (shifts, division,
     comparisons) return [None] and keep the boxed path.  Operand order
     matches the decoded engine's closures (right operand first), so
     def-check faults surface in the same order. *)
  (* Shaped int-domain values, mirroring [cval]: [IK] constant, [IS]
     slot read (never faults — checked-mode locals compile to [IF] with
     the def test), [IF] computed.  Leaf shapes inline into the parent
     operation, so a binop over leaves is one closure, not three.  Only
     an [IF] side can fault; where both sides are [IF] the right one
     evaluates first, like the decoded closures. *)
  let geti fr i = Int64.to_int (Array.unsafe_get fr.regs i) in
  let rec cint_v (e : Expr.t) : cival option =
    match e with
    | Expr.Const n -> Some (IK (Int64.to_int n))
    | Expr.Local x ->
      let i = slot x in
      if checked then
        Some
          (IF
             (fun fr ->
               if Bytes.unsafe_get fr.def i = '\000' then
                 raise
                   (M.Fault.Usage
                      (Printf.sprintf "use of undefined local %s" x))
               else geti fr i))
      else Some (IS i)
    | Expr.Global_addr g -> (
      match t.map.Address_map.global_addr g with
      | addr -> Some (IK addr)
      | exception _ -> None)
    | Expr.Func_addr fn -> (
      match t.map.Address_map.func_addr fn with
      | addr -> Some (IK addr)
      | exception _ -> None)
    | Expr.Un (Expr.Neg, a) -> (
      match cint_v a with
      | Some (IK x) -> Some (IK (-x))
      | Some (IS i) -> Some (IF (fun fr -> -geti fr i))
      | Some (IF f) -> Some (IF (fun fr -> -f fr))
      | None -> None)
    | Expr.Un (Expr.Not, a) -> (
      match cint_v a with
      | Some (IK x) -> Some (IK (lnot x))
      | Some (IS i) -> Some (IF (fun fr -> lnot (geti fr i)))
      | Some (IF f) -> Some (IF (fun fr -> lnot (f fr)))
      | None -> None)
    | Expr.Bin (op, a, b) -> (
      match (cint_v a, cint_v b) with
      | Some sa, Some sb -> (
        match op with
        | Expr.Add -> (
          match (sa, sb) with
          | IK x, IK y -> Some (IK (x + y))
          | IS i, IK y -> Some (IF (fun fr -> geti fr i + y))
          | IK x, IS j -> Some (IF (fun fr -> x + geti fr j))
          | IS i, IS j -> Some (IF (fun fr -> geti fr i + geti fr j))
          | IF f, IK y -> Some (IF (fun fr -> f fr + y))
          | IK x, IF g -> Some (IF (fun fr -> x + g fr))
          | IS i, IF g ->
            Some
              (IF
                 (fun fr ->
                   let vb = g fr in
                   geti fr i + vb))
          | IF f, IS j -> Some (IF (fun fr -> f fr + geti fr j))
          | IF f, IF g ->
            Some
              (IF
                 (fun fr ->
                   let vb = g fr in
                   f fr + vb)))
        | Expr.Sub -> (
          match (sa, sb) with
          | IK x, IK y -> Some (IK (x - y))
          | IS i, IK y -> Some (IF (fun fr -> geti fr i - y))
          | IK x, IS j -> Some (IF (fun fr -> x - geti fr j))
          | IS i, IS j -> Some (IF (fun fr -> geti fr i - geti fr j))
          | IF f, IK y -> Some (IF (fun fr -> f fr - y))
          | IK x, IF g -> Some (IF (fun fr -> x - g fr))
          | IS i, IF g ->
            Some
              (IF
                 (fun fr ->
                   let vb = g fr in
                   geti fr i - vb))
          | IF f, IS j -> Some (IF (fun fr -> f fr - geti fr j))
          | IF f, IF g ->
            Some
              (IF
                 (fun fr ->
                   let vb = g fr in
                   f fr - vb)))
        | Expr.Mul -> (
          match (sa, sb) with
          | IK x, IK y -> Some (IK (x * y))
          | IS i, IK y -> Some (IF (fun fr -> geti fr i * y))
          | IK x, IS j -> Some (IF (fun fr -> x * geti fr j))
          | IS i, IS j -> Some (IF (fun fr -> geti fr i * geti fr j))
          | IF f, IK y -> Some (IF (fun fr -> f fr * y))
          | IK x, IF g -> Some (IF (fun fr -> x * g fr))
          | IS i, IF g ->
            Some
              (IF
                 (fun fr ->
                   let vb = g fr in
                   geti fr i * vb))
          | IF f, IS j -> Some (IF (fun fr -> f fr * geti fr j))
          | IF f, IF g ->
            Some
              (IF
                 (fun fr ->
                   let vb = g fr in
                   f fr * vb)))
        | Expr.And -> (
          match (sa, sb) with
          | IK x, IK y -> Some (IK (x land y))
          | IS i, IK y -> Some (IF (fun fr -> geti fr i land y))
          | IK x, IS j -> Some (IF (fun fr -> x land geti fr j))
          | IS i, IS j -> Some (IF (fun fr -> geti fr i land geti fr j))
          | IF f, IK y -> Some (IF (fun fr -> f fr land y))
          | IK x, IF g -> Some (IF (fun fr -> x land g fr))
          | IS i, IF g ->
            Some
              (IF
                 (fun fr ->
                   let vb = g fr in
                   geti fr i land vb))
          | IF f, IS j -> Some (IF (fun fr -> f fr land geti fr j))
          | IF f, IF g ->
            Some
              (IF
                 (fun fr ->
                   let vb = g fr in
                   f fr land vb)))
        | Expr.Or -> (
          match (sa, sb) with
          | IK x, IK y -> Some (IK (x lor y))
          | IS i, IK y -> Some (IF (fun fr -> geti fr i lor y))
          | IK x, IS j -> Some (IF (fun fr -> x lor geti fr j))
          | IS i, IS j -> Some (IF (fun fr -> geti fr i lor geti fr j))
          | IF f, IK y -> Some (IF (fun fr -> f fr lor y))
          | IK x, IF g -> Some (IF (fun fr -> x lor g fr))
          | IS i, IF g ->
            Some
              (IF
                 (fun fr ->
                   let vb = g fr in
                   geti fr i lor vb))
          | IF f, IS j -> Some (IF (fun fr -> f fr lor geti fr j))
          | IF f, IF g ->
            Some
              (IF
                 (fun fr ->
                   let vb = g fr in
                   f fr lor vb)))
        | Expr.Xor -> (
          match (sa, sb) with
          | IK x, IK y -> Some (IK (x lxor y))
          | IS i, IK y -> Some (IF (fun fr -> geti fr i lxor y))
          | IK x, IS j -> Some (IF (fun fr -> x lxor geti fr j))
          | IS i, IS j -> Some (IF (fun fr -> geti fr i lxor geti fr j))
          | IF f, IK y -> Some (IF (fun fr -> f fr lxor y))
          | IK x, IF g -> Some (IF (fun fr -> x lxor g fr))
          | IS i, IF g ->
            Some
              (IF
                 (fun fr ->
                   let vb = g fr in
                   geti fr i lxor vb))
          | IF f, IS j -> Some (IF (fun fr -> f fr lxor geti fr j))
          | IF f, IF g ->
            Some
              (IF
                 (fun fr ->
                   let vb = g fr in
                   f fr lxor vb)))
        | _ -> None)
      | _ -> None)
  in
  let cint (e : Expr.t) : (frame -> int) option =
    match cint_v e with
    | Some (IK v) -> Some (fun _fr -> v)
    | Some (IS i) -> Some (fun fr -> geti fr i)
    | Some (IF f) -> Some f
    | None -> None
  in
  (* An address-consumer position: the int-domain closure when the
     expression qualifies, otherwise the boxed closure truncated at the
     end — exactly what the decoded engine computes. *)
  let cint_or_force (e : Expr.t) : frame -> int =
    match cint e with
    | Some ki -> ki
    | None ->
      let cv, _ = cexpr e in
      let k = force cv in
      fun fr -> Int64.to_int (k fr)
  in
  let pre w =
    if t.fuel <= 0 then raise Fuel_exhausted;
    t.fuel <- t.fuel - 1;
    c.M.Cpu.cycles <- c.M.Cpu.cycles + w
  in
  (* Uncharged assignment of a computed value to a slot. *)
  let assign i cv : frame -> unit =
    if checked then
      let k = force cv in
      fun fr ->
        Array.unsafe_set fr.regs i (k fr);
        Bytes.unsafe_set fr.def i '\001'
    else
      match cv with
      | K v -> fun fr -> Array.unsafe_set fr.regs i v
      | S j ->
        fun fr -> Array.unsafe_set fr.regs i (Array.unsafe_get fr.regs j)
      | F k -> fun fr -> Array.unsafe_set fr.regs i (k fr)
  in
  let set_slot fr i v =
    Array.unsafe_set fr.regs i v;
    if checked then Bytes.unsafe_set fr.def i '\001'
  in
  (* Static routing for a constant address: pick the owning region's bus
     fast path at translation time; anything unusual (PPB, unmapped,
     flash writes) keeps the generic decode, whose behaviour is the
     reference. *)
  let static_load addr width : unit -> int64 =
    match M.Memmap.classify addr with
    | M.Memmap.Sram when M.Memory.in_range t.bus.M.Bus.sram addr width ->
      fun () -> sram_load t addr width
    | M.Memmap.Code when M.Memory.in_range t.bus.M.Bus.flash addr width ->
      fun () -> routed_load t M.Bus.read_flash addr width
    | M.Memmap.Peripheral | M.Memmap.External_ram | M.Memmap.External_device
    | M.Memmap.Vendor ->
      fun () -> routed_load t M.Bus.read_device addr width
    | M.Memmap.Ppb | M.Memmap.Code | M.Memmap.Sram ->
      fun () -> checked_load t addr width
  in
  let static_store addr width : int64 -> unit =
    match M.Memmap.classify addr with
    | M.Memmap.Sram when M.Memory.in_range t.bus.M.Bus.sram addr width ->
      fun v -> sram_store t addr width v
    | M.Memmap.Peripheral | M.Memmap.External_ram | M.Memmap.External_device
    | M.Memmap.Vendor ->
      fun v -> routed_store t M.Bus.write_device addr width v
    | M.Memmap.Ppb | M.Memmap.Code | M.Memmap.Sram ->
      fun v -> checked_store t addr width v
  in
  (* Argument evaluation, left-to-right like the other engines (visible
     if two faulting arguments would raise different usage faults). *)
  let make_eval_args (cargs : cval list) : frame -> int64 array =
    let kargs = Array.of_list (List.map force cargs) in
    match Array.length kargs with
    | 0 -> fun _fr -> empty_argv
    | 1 ->
      let k0 = kargs.(0) in
      fun fr -> [| k0 fr |]
    | 2 ->
      let k0 = kargs.(0) and k1 = kargs.(1) in
      fun fr ->
        let a0 = k0 fr in
        let a1 = k1 fr in
        [| a0; a1 |]
    | 3 ->
      let k0 = kargs.(0) and k1 = kargs.(1) and k2 = kargs.(2) in
      fun fr ->
        let a0 = k0 fr in
        let a1 = k1 fr in
        let a2 = k2 fr in
        [| a0; a1; a2 |]
    | n ->
      fun fr ->
        let argv = Array.make n 0L in
        for i = 0 to n - 1 do
          Array.unsafe_set argv i ((Array.unsafe_get kargs i) fr)
        done;
        argv
  in
  (* Dispatch a compiled block without the array loop when it collapsed
     to zero or one superblock — inner loop and branch bodies mostly do. *)
  let runner (ks : (frame -> unit) array) : frame -> unit =
    match ks with
    | [||] -> fun _fr -> ()
    | [| k |] -> k
    | ks -> fun fr -> dexec_body ks fr
  in
  let rec cinstr (instr : Instr.t) : cinstr =
    match instr with
    | Instr.Nop -> Cpure ((fun _fr -> ()), 1)
    | Instr.Let (x, e) ->
      let i = slot x in
      let cv, we = cexpr e in
      Cpure (assign i cv, we + 1)
    | Instr.Alloca (x, ty) ->
      let i = slot x in
      let size = (Ty.size_of ty + 7) land lnot 7 in
      Cpure
        ( (fun fr ->
            let sp = c.M.Cpu.sp - size in
            if sp < c.M.Cpu.stack_base then raise (Aborted "stack overflow");
            c.M.Cpu.sp <- sp;
            set_slot fr i (Int64.of_int sp)),
          1 )
    | Instr.Load (x, wd, a) -> (
      let i = slot x in
      let ca, wa = cexpr a in
      let width = Instr.width_bytes wd in
      let w = wa + 1 in
      match ca with
      | K kaddr ->
        let ld = static_load (Int64.to_int kaddr) width in
        Ctail ((fun fr -> set_slot fr i (ld ())), w)
      | ca -> (
        match cint a with
        | Some ki ->
          Ctail
            ( (fun fr ->
                let addr = ki fr in
                let v =
                  if addr >= sram_lo && addr + width <= sram_hi then
                    sram_load t addr width
                  else checked_load t addr width
                in
                set_slot fr i v),
              w )
        | None ->
          let ka = force ca in
          Ctail
            ( (fun fr ->
                let addr = Int64.to_int (ka fr) in
                let v =
                  if addr >= sram_lo && addr + width <= sram_hi then
                    sram_load t addr width
                  else checked_load t addr width
                in
                set_slot fr i v),
              w )))
    | Instr.Store (wd, a, v) -> (
      let ca, wa = cexpr a in
      let cv, wv = cexpr v in
      let width = Instr.width_bytes wd in
      let w = wa + wv + 1 in
      match ca with
      | K kaddr ->
        let st = static_store (Int64.to_int kaddr) width in
        let kv = force cv in
        Ctail ((fun fr -> st (kv fr)), w)
      | ca -> (
        match cint a with
        | Some ki ->
          let kv = force cv in
          Ctail
            ( (fun fr ->
                let addr = ki fr in
                let v = kv fr in
                if addr >= sram_lo && addr + width <= sram_hi then
                  sram_store t addr width v
                else checked_store t addr width v),
              w )
        | None ->
          let ka = force ca in
          let kv = force cv in
          Ctail
            ( (fun fr ->
                let addr = Int64.to_int (ka fr) in
                let v = kv fr in
                if addr >= sram_lo && addr + width <= sram_hi then
                  sram_store t addr width v
                else checked_store t addr width v),
              w )))
    | Instr.Call (dst, callee, args) -> (
      let cargs = List.map cexpr args in
      let wargs = List.fold_left (fun acc (_, w) -> acc + w) 0 cargs in
      let eval_args = make_eval_args (List.map fst cargs) in
      let idst = Option.map slot dst in
      match callee with
      | Instr.Direct fname -> (
        let w = wargs + 1 in
        match Hashtbl.find_opt t.cfuncs fname with
        | None ->
          (* evaluate arguments first, like the other engines, then die *)
          Cfull
            (fun fr ->
              pre w;
              ignore (eval_args fr);
              raise (Aborted ("call to undefined function " ^ fname)))
        | Some callee_cf -> (
          let ct =
            { ct_func = callee_cf;
              ct_addr = t.map.Address_map.func_addr fname;
              ct_entry = Hashtbl.mem t.entries fname }
          in
          match idst with
          | None ->
            Cfull
              (fun fr ->
                pre w;
                ignore (ccall_target t ct (eval_args fr)))
          | Some i ->
            Cfull
              (fun fr ->
                pre w;
                set_slot fr i (ccall_target t ct (eval_args fr)))))
      | Instr.Indirect e ->
        let _, we = cexpr e in
        let ke = cint_or_force e in
        let w = wargs + we + 1 in
        (* one-entry inline cache keyed by the code address; the miss
           path preserves the decoded engine's fault order (non-function
           address before arguments, undefined function after) *)
        let cache : (int * ctarget) option ref = ref None in
        Cfull
          (fun fr ->
            pre w;
            let addr = ke fr in
            let ret =
              match !cache with
              | Some (a, ct) when a = addr -> ccall_target t ct (eval_args fr)
              | _ -> (
                match t.map.Address_map.func_of_addr addr with
                | None ->
                  raise
                    (Aborted
                       (Printf.sprintf "indirect call to non-function 0x%08X"
                          addr))
                | Some fname ->
                  let argv = eval_args fr in
                  let ct = cresolve t fname in
                  cache := Some (addr, ct);
                  ccall_target t ct argv)
            in
            match idst with Some i -> set_slot fr i ret | None -> ()))
    | Instr.If (cond, a, b) ->
      let kc, wc = cbool cond in
      let ka = runner (cblock a) in
      let kb = runner (cblock b) in
      let w = wc + 1 in
      Cfull
        (fun fr ->
          pre w;
          if kc fr then ka fr else kb fr)
    | Instr.While (cond, body) ->
      let kc, wc = cbool cond in
      let kb = runner (cblock body) in
      Cfull
        (fun fr ->
          pre 1;
          let rec loop () =
            if t.fuel <= 0 then raise Fuel_exhausted;
            c.M.Cpu.cycles <- c.M.Cpu.cycles + wc;
            if kc fr then begin
              kb fr;
              loop ()
            end
          in
          loop ())
    | Instr.Return e ->
      let ke = match e with None -> None | Some e -> Some (cexpr e) in
      let w = match ke with None -> 1 | Some (_, we) -> we + 1 in
      let ke = Option.map (fun (cv, _) -> force cv) ke in
      Cfull
        (fun fr ->
          pre w;
          let v = match ke with None -> 0L | Some k -> k fr in
          raise (Returning v))
    | Instr.Memcpy (d, s, n) ->
      let _, wd = cexpr d in
      let _, ws = cexpr s in
      let _, wn = cexpr n in
      let w = wd + ws + wn + 1 in
      let kd = cint_or_force d and ks = cint_or_force s
      and kn = cint_or_force n in
      Cfull
        (fun fr ->
          pre w;
          let dst = kd fr in
          let src = ks fr in
          let len = kn fr in
          let rec go off =
            if off < len then begin
              let w =
                if
                  len - off >= 4
                  && (dst + off) land 3 = 0
                  && (src + off) land 3 = 0
                then 4
                else 1
              in
              checked_store t (dst + off) w (checked_load t (src + off) w);
              go (off + w)
            end
          in
          go 0)
    | Instr.Memset (d, v, n) ->
      let _, wd = cexpr d in
      let kv, wv = cexpr v in
      let _, wn = cexpr n in
      let w = wd + wv + wn + 1 in
      let kd = cint_or_force d
      and kv = force kv
      and kn = cint_or_force n in
      Cfull
        (fun fr ->
          pre w;
          let dst = kd fr in
          let v = kv fr in
          let len = kn fr in
          let word =
            let b = Int64.logand v 0xFFL in
            List.fold_left
              (fun acc sh -> Int64.logor acc (Int64.shift_left b sh))
              0L [ 0; 8; 16; 24 ]
          in
          let rec go off =
            if off < len then begin
              let w = if len - off >= 4 && (dst + off) land 3 = 0 then 4 else 1 in
              checked_store t (dst + off) w (if w = 4 then word else v);
              go (off + w)
            end
          in
          go 0)
    | Instr.Svc n ->
      Cfull
        (fun _fr ->
          pre 1;
          t.handler.on_svc n)
    | Instr.Halt ->
      Cfull
        (fun _fr ->
          pre 1;
          raise Halted)
  (* Group consecutive pure instructions into one superblock closure:
     fast path takes one fuel decrement and one batched charge for the
     whole run; if fuel cannot cover it, the slow path replays the
     decoded engine's exact per-instruction sequence so exhaustion
     lands on the same instruction with the same cycle count. *)
  and cblock (block : Instr.block) : (frame -> unit) array =
    let fuse_run (run : ((frame -> unit) * int) list) : frame -> unit =
      match run with
      | [] -> assert false
      | [ (k, w) ] ->
        fun fr ->
          pre w;
          k fr
      | [ (k0, w0); (k1, w1) ] ->
        let wtot = w0 + w1 in
        fun fr ->
          if t.fuel >= 2 then begin
            t.fuel <- t.fuel - 2;
            c.M.Cpu.cycles <- c.M.Cpu.cycles + wtot;
            k0 fr;
            k1 fr
          end
          else begin
            pre w0;
            k0 fr;
            pre w1;
            k1 fr
          end
      | [ (k0, w0); (k1, w1); (k2, w2) ] ->
        let wtot = w0 + w1 + w2 in
        fun fr ->
          if t.fuel >= 3 then begin
            t.fuel <- t.fuel - 3;
            c.M.Cpu.cycles <- c.M.Cpu.cycles + wtot;
            k0 fr;
            k1 fr;
            k2 fr
          end
          else begin
            pre w0;
            k0 fr;
            pre w1;
            k1 fr;
            pre w2;
            k2 fr
          end
      | run ->
        let ks = Array.of_list (List.map fst run) in
        let ws = Array.of_list (List.map snd run) in
        let n = Array.length ks in
        let wtot = Array.fold_left ( + ) 0 ws in
        fun fr ->
          if t.fuel >= n then begin
            t.fuel <- t.fuel - n;
            c.M.Cpu.cycles <- c.M.Cpu.cycles + wtot;
            for i = 0 to n - 1 do
              (Array.unsafe_get ks i) fr
            done
          end
          else
            for i = 0 to n - 1 do
              if t.fuel <= 0 then raise Fuel_exhausted;
              t.fuel <- t.fuel - 1;
              c.M.Cpu.cycles <- c.M.Cpu.cycles + Array.unsafe_get ws i;
              (Array.unsafe_get ks i) fr
            done
    in
    let flush acc pending =
      match pending with [] -> acc | run -> fuse_run (List.rev run) :: acc
    in
    let rec group acc pending = function
      | [] -> List.rev (flush acc pending)
      | Cpure (k, w) :: rest -> group acc ((k, w) :: pending) rest
      | Ctail (k, w) :: rest ->
        (* the access closes the run: batched charges all precede it *)
        group (fuse_run (List.rev ((k, w) :: pending)) :: acc) [] rest
      | Cfull k :: rest -> group (k :: flush acc pending) [] rest
    in
    Array.of_list (group [] [] (List.map cinstr block))
  in
  let entry =
    match split_tail [] f.Func.body with
    | Some (prefix, ret) when not (block_returns prefix) -> (
      (* the function's only return is in tail position: run the prefix
         and produce the value directly, no [Returning] unwind *)
      let kbody = runner (cblock prefix) in
      match ret with
      | None ->
        fun fr ->
          kbody fr;
          pre 1;
          0L
      | Some e ->
        let cv, we = cexpr e in
        let w = we + 1 in
        let k = force cv in
        fun fr ->
          kbody fr;
          pre w;
          k fr)
    | _ ->
      let kbody = runner (cblock f.Func.body) in
      if block_returns f.Func.body then
        fun fr ->
          (match kbody fr with
          | () -> 0L
          | exception Returning v -> v)
      else
        fun fr ->
          kbody fr;
          0L
  in
  cf.cf_nslots <- !nslots;
  cf.cf_checked <- checked;
  cf.cf_entry <- entry

(* --- construction ------------------------------------------------------- *)

let create ?(fuel = 200_000_000) ?(max_depth = 200) ?(handler = abort_handler)
    ?(entries = []) ?(engine = Compiled) ?(sink = Obs.Sink.null) ~bus ~map
    program =
  let tbl = Hashtbl.create 16 in
  List.iter (fun e -> Hashtbl.replace tbl e ()) entries;
  let t =
    { program;
      funcs = Program.func_map program;
      bus;
      map;
      handler;
      trace = Trace.create ();
      entries = tbl;
      fuel;
      depth = 0;
      max_depth;
      engine;
      dfuncs = Hashtbl.create 64;
      cfuncs = Hashtbl.create 64;
      operation_switches = 0;
      sink;
      last_fault = None }
  in
  (match engine with
  | Tree -> ()
  | Decoded ->
    (* decode once, at image-load time *)
    List.iter
      (fun (f : Func.t) -> Hashtbl.replace t.dfuncs f.Func.name (decode t f))
      program.Program.funcs
  | Compiled ->
    (* two-phase translation: create every function's record first so
       direct call sites bind their callee's record, then compile the
       bodies *)
    List.iter
      (fun (f : Func.t) ->
        Hashtbl.replace t.cfuncs f.Func.name
          { cf_func = f;
            cf_nslots = 0;
            cf_nparams = List.length f.Func.params;
            cf_checked = true;
            cf_entry = (fun _fr -> 0L) })
      program.Program.funcs;
    Hashtbl.iter (fun _name cf -> compile t cf) t.cfuncs);
  t

(* --- program entry ------------------------------------------------------ *)

let call t fname argv =
  match t.engine with
  | Tree -> call t fname argv
  | Decoded -> dcall t fname (Array.of_list argv)
  | Compiled -> ccall t fname (Array.of_list argv)

let run ?(reset_stack = true) t =
  (* a fresh run must not inherit the previous run's fault: interpreters
     live beyond one run in the memoized pipeline store, and post-mortem
     classifiers read [last_fault] after the run ends *)
  t.last_fault <- None;
  let c = cpu t in
  if reset_stack then begin
    c.M.Cpu.sp <- t.map.Address_map.stack_top;
    c.M.Cpu.stack_base <- t.map.Address_map.stack_base;
    c.M.Cpu.stack_limit <- t.map.Address_map.stack_top
  end;
  match call t t.program.Program.main [] with
  | _ -> ()
  | exception Halted -> ()
