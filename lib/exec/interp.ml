(* The firmware interpreter.

   Executes the structured IR against the machine model.  Every memory
   access (loads, stores, memcpy/memset, spilled arguments) goes through
   the bus, so the MPU and privilege checks fire exactly where they would
   on hardware.  Supervisor calls and faults are delivered to a pluggable
   handler — OPEC-Monitor in instrumented runs, an abort-everything
   handler in baseline runs.

   Operation switching: the image marks operation entry functions.  When a
   call targets one, the interpreter performs the SVC protocol of
   Section 5.3: it traps to the handler with the evaluated arguments (the
   handler sanitizes/synchronizes globals, relocates stack data and
   rewrites the pointer arguments, reconfigures the MPU) and then invokes
   the entry with the arguments the handler returned; a second trap fires
   when the entry returns. *)

open Opec_ir
module M = Opec_machine

exception Aborted of string
exception Fuel_exhausted

type access_desc =
  | Access_load of { addr : int; width : int }
  | Access_store of { addr : int; width : int; value : int64 }

type fault_action = Retry | Abort of string
type bus_action = Emulated of int64 | Bus_abort of string

type handler = {
  on_operation_enter : entry:Func.t -> args:int64 array -> int64 array;
  on_operation_exit : entry:Func.t -> unit;
  on_mem_fault : access_desc -> M.Fault.info -> fault_action;
  on_bus_fault : access_desc -> M.Fault.info -> bus_action;
  on_svc : int -> unit;
}

(* Baseline handler: no monitor; any fault kills the firmware, any SVC is
   ignored (baseline images contain none). *)
let abort_handler =
  { on_operation_enter = (fun ~entry:_ ~args -> args);
    on_operation_exit = (fun ~entry:_ -> ());
    on_mem_fault =
      (fun _ info -> Abort (Fmt.str "MemManage: %a" M.Fault.pp_info info));
    on_bus_fault =
      (fun _ info -> Bus_abort (Fmt.str "BusFault: %a" M.Fault.pp_info info));
    on_svc = (fun _ -> ()) }

type t = {
  program : Program.t;
  funcs : Func.t Program.String_map.t;
  bus : M.Bus.t;
  map : Address_map.t;
  mutable handler : handler;
  trace : Trace.t;
  entries : (string, unit) Hashtbl.t;  (** operation entry functions *)
  mutable fuel : int;
  mutable depth : int;
  max_depth : int;
  (* switch bookkeeping for metrics *)
  mutable operation_switches : int;
  (* last data-access fault delivered to the handler, for post-mortem
     classification (the attack campaign reads it after an abort) *)
  mutable last_fault : (access_desc * M.Fault.info) option;
}

let create ?(fuel = 200_000_000) ?(max_depth = 200) ?(handler = abort_handler)
    ?(entries = []) ~bus ~map program =
  let tbl = Hashtbl.create 16 in
  List.iter (fun e -> Hashtbl.replace tbl e ()) entries;
  { program;
    funcs = Program.func_map program;
    bus;
    map;
    handler;
    trace = Trace.create ();
    entries = tbl;
    fuel;
    depth = 0;
    max_depth;
    operation_switches = 0;
    last_fault = None }

let cpu t = t.bus.M.Bus.cpu
let set_handler t handler = t.handler <- handler
let last_fault t = t.last_fault
let trace t = t.trace
let cycles t = M.Cpu.cycles (cpu t)
let switches t = t.operation_switches

exception Halted
exception Returning of int64

(* --- environment ------------------------------------------------------ *)

module Env = struct
  type t = (string, int64) Hashtbl.t

  let create () : t = Hashtbl.create 16
  let get env x =
    match Hashtbl.find_opt env x with
    | Some v -> v
    | None -> raise (M.Fault.Usage (Printf.sprintf "use of undefined local %s" x))

  let set env x v = Hashtbl.replace env x v
end

(* --- expression evaluation -------------------------------------------- *)

let truthy v = not (Int64.equal v 0L)

let rec eval t env (e : Expr.t) =
  M.Cpu.charge (cpu t) 1;
  match e with
  | Expr.Const n -> n
  | Expr.Local x -> Env.get env x
  | Expr.Global_addr g -> Int64.of_int (t.map.Address_map.global_addr g)
  | Expr.Func_addr f -> Int64.of_int (t.map.Address_map.func_addr f)
  | Expr.Un (Expr.Neg, a) -> Int64.neg (eval t env a)
  | Expr.Un (Expr.Not, a) -> Int64.lognot (eval t env a)
  | Expr.Bin (op, a, b) -> (
    let va = eval t env a in
    let vb = eval t env b in
    match Expr.eval_bin op va vb with
    | Some v -> v
    | None -> raise (M.Fault.Usage "division by zero"))

(* --- MPU-checked access with fault delivery --------------------------- *)

let rec checked_load t addr width =
  try
    let v = M.Bus.read t.bus addr width in
    Trace.record_access t.trace ~addr ~write:false;
    v
  with
  | M.Fault.Mem_manage info -> (
    let desc = Access_load { addr; width } in
    t.last_fault <- Some (desc, info);
    match t.handler.on_mem_fault desc info with
    | Retry -> checked_load t addr width
    | Abort msg -> raise (Aborted msg))
  | M.Fault.Bus info -> (
    let desc = Access_load { addr; width } in
    t.last_fault <- Some (desc, info);
    match t.handler.on_bus_fault desc info with
    | Emulated v -> v
    | Bus_abort msg -> raise (Aborted msg))

let rec checked_store t addr width v =
  try
    M.Bus.write t.bus addr width v;
    Trace.record_access t.trace ~addr ~write:true
  with
  | M.Fault.Mem_manage info -> (
    let desc = Access_store { addr; width; value = v } in
    t.last_fault <- Some (desc, info);
    match t.handler.on_mem_fault desc info with
    | Retry -> checked_store t addr width v
    | Abort msg -> raise (Aborted msg))
  | M.Fault.Bus info -> (
    let desc = Access_store { addr; width; value = v } in
    t.last_fault <- Some (desc, info);
    match t.handler.on_bus_fault desc info with
    | Emulated _ -> ()
    | Bus_abort msg -> raise (Aborted msg))

(* --- instruction execution -------------------------------------------- *)

let spill_threshold = 4 (* first four arguments travel in registers *)

let rec exec_block t env block =
  List.iter (exec_instr t env) block

and exec_instr t env instr =
  if t.fuel <= 0 then raise Fuel_exhausted;
  t.fuel <- t.fuel - 1;
  M.Cpu.charge (cpu t) 1;
  match instr with
  | Instr.Nop -> ()
  | Instr.Let (x, e) -> Env.set env x (eval t env e)
  | Instr.Load (x, w, a) ->
    let addr = Int64.to_int (eval t env a) in
    Env.set env x (checked_load t addr (Instr.width_bytes w))
  | Instr.Store (w, a, v) ->
    let addr = Int64.to_int (eval t env a) in
    let v = eval t env v in
    checked_store t addr (Instr.width_bytes w) v
  | Instr.Alloca (x, ty) ->
    let c = cpu t in
    let size = (Ty.size_of ty + 7) land lnot 7 in
    let sp = c.M.Cpu.sp - size in
    if sp < c.M.Cpu.stack_base then raise (Aborted "stack overflow");
    c.M.Cpu.sp <- sp;
    Env.set env x (Int64.of_int sp)
  | Instr.Call (dst, callee, args) ->
    let fname =
      match callee with
      | Instr.Direct f -> f
      | Instr.Indirect e ->
        let addr = Int64.to_int (eval t env e) in
        (match t.map.Address_map.func_of_addr addr with
        | Some f -> f
        | None ->
          raise
            (Aborted (Printf.sprintf "indirect call to non-function 0x%08X" addr)))
    in
    let argv = List.map (eval t env) args in
    let ret = call t fname argv in
    Option.iter (fun x -> Env.set env x ret) dst
  | Instr.If (c, a, b) ->
    if truthy (eval t env c) then exec_block t env a else exec_block t env b
  | Instr.While (c, body) ->
    let rec loop () =
      if t.fuel <= 0 then raise Fuel_exhausted;
      if truthy (eval t env c) then begin
        exec_block t env body;
        loop ()
      end
    in
    loop ()
  | Instr.Return e ->
    let v = match e with None -> 0L | Some e -> eval t env e in
    raise (Returning v)
  | Instr.Memcpy (d, s, n) ->
    let dst = Int64.to_int (eval t env d) in
    let src = Int64.to_int (eval t env s) in
    let len = Int64.to_int (eval t env n) in
    let rec go off =
      if off < len then begin
        let w = if len - off >= 4 && (dst + off) land 3 = 0 && (src + off) land 3 = 0 then 4 else 1 in
        checked_store t (dst + off) w (checked_load t (src + off) w);
        go (off + w)
      end
    in
    go 0
  | Instr.Memset (d, v, n) ->
    let dst = Int64.to_int (eval t env d) in
    let v = eval t env v in
    let len = Int64.to_int (eval t env n) in
    let word =
      let b = Int64.logand v 0xFFL in
      List.fold_left
        (fun acc sh -> Int64.logor acc (Int64.shift_left b sh))
        0L [ 0; 8; 16; 24 ]
    in
    let rec go off =
      if off < len then begin
        let w = if len - off >= 4 && (dst + off) land 3 = 0 then 4 else 1 in
        checked_store t (dst + off) w (if w = 4 then word else v);
        go (off + w)
      end
    in
    go 0
  | Instr.Svc n -> t.handler.on_svc n
  | Instr.Halt -> raise Halted

(* --- function calls ---------------------------------------------------- *)

and call t fname argv =
  let f =
    match Program.String_map.find_opt fname t.funcs with
    | Some f -> f
    | None -> raise (Aborted ("call to undefined function " ^ fname))
  in
  (* instruction-fetch permission for the callee's first instruction *)
  (try M.Bus.check_execute t.bus (t.map.Address_map.func_addr fname)
   with
  | M.Fault.Mem_manage info | M.Fault.Bus info ->
    raise (Aborted (Fmt.str "execute fault entering %s: %a" fname M.Fault.pp_info info)));
  if t.depth >= t.max_depth then raise (Aborted "call depth exceeded");
  if Hashtbl.mem t.entries fname then call_operation t f argv
  else call_plain t f argv

and call_plain t (f : Func.t) argv =
  let c = cpu t in
  let saved_sp = c.M.Cpu.sp in
  (* arguments beyond the register set travel on the caller's stack *)
  let argv = Array.of_list argv in
  let spill_count = max 0 (Array.length argv - spill_threshold) in
  if spill_count > 0 then begin
    let base = c.M.Cpu.sp - (spill_count * 4) in
    if base < c.M.Cpu.stack_base then raise (Aborted "stack overflow");
    c.M.Cpu.sp <- base;
    for i = 0 to spill_count - 1 do
      checked_store t (base + (i * 4)) 4 argv.(spill_threshold + i)
    done;
    (* the callee reads them back *)
    for i = 0 to spill_count - 1 do
      argv.(spill_threshold + i) <- checked_load t (base + (i * 4)) 4
    done
  end;
  M.Cpu.charge c 2;
  Trace.record t.trace (Trace.Call f.name);
  t.depth <- t.depth + 1;
  let env = Env.create () in
  List.iteri
    (fun i (x, _ty) ->
      Env.set env x (if i < Array.length argv then argv.(i) else 0L))
    f.params;
  let ret =
    match exec_block t env f.body with
    | () -> 0L
    | exception Returning v -> v
  in
  t.depth <- t.depth - 1;
  Trace.record t.trace (Trace.Return f.name);
  c.M.Cpu.sp <- saved_sp;
  ret

(* Operation switch protocol: SVC trap in, run entry, SVC trap out. *)
and call_operation t (f : Func.t) argv =
  let c = cpu t in
  let saved_sp = c.M.Cpu.sp in
  M.Cpu.charge c 4 (* SVC entry/exit pipeline cost *);
  let argv = Array.of_list argv in
  let argv' =
    M.Cpu.with_privilege c (fun () -> t.handler.on_operation_enter ~entry:f ~args:argv)
  in
  t.operation_switches <- t.operation_switches + 1;
  Trace.record t.trace (Trace.Op_enter f.name);
  t.depth <- t.depth + 1;
  let env = Env.create () in
  List.iteri
    (fun i (x, _ty) ->
      Env.set env x (if i < Array.length argv' then argv'.(i) else 0L))
    f.params;
  let finish () =
    M.Cpu.charge c 4;
    M.Cpu.with_privilege c (fun () -> t.handler.on_operation_exit ~entry:f);
    t.depth <- t.depth - 1;
    Trace.record t.trace (Trace.Op_exit f.name);
    c.M.Cpu.sp <- saved_sp
  in
  match exec_block t env f.body with
  | () -> finish (); 0L
  | exception Returning v -> finish (); v
  | exception e -> finish (); raise e

(* --- program entry ------------------------------------------------------ *)

let run ?(reset_stack = true) t =
  let c = cpu t in
  if reset_stack then begin
    c.M.Cpu.sp <- t.map.Address_map.stack_top;
    c.M.Cpu.stack_base <- t.map.Address_map.stack_base;
    c.M.Cpu.stack_limit <- t.map.Address_map.stack_top
  end;
  match call t t.program.Program.main [] with
  | _ -> ()
  | exception Halted -> ()
