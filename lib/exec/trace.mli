(** Execution trace at function granularity — the stand-in for the
    paper's GDB single-stepping (Section 6.4). *)

type event =
  | Call of string      (** function entered *)
  | Return of string    (** function returned *)
  | Op_enter of string  (** operation switch: entering an entry function *)
  | Op_exit of string   (** operation switch: leaving an entry function *)
  | Access of { addr : int; write : bool }
      (** one MPU-visible memory access (recorded only when {!t.mem} is
          set) — the raw material of the lint trace-oracle *)

type t = {
  mutable rev_events : event list;
      (** reverse emission order — internal; mutate only through
          {!record}/{!clear} or the {!events} cache goes stale *)
  mutable fwd_cache : event list option;
      (** memoized execution-order view — internal *)
  mutable enabled : bool;
  mutable mem : bool;  (** also record individual memory accesses *)
}

val create : unit -> t
val record : t -> event -> unit

(** Record a memory access; a no-op unless both [enabled] and [mem] are
    set, so function-granularity tracing stays cheap. *)
val record_access : t -> addr:int -> write:bool -> unit

(** Events in execution order.  The reversed view is computed once per
    burst of records and cached until the next {!record} or {!clear},
    so repeated consumers pay O(1) after the first call. *)
val events : t -> event list

val clear : t -> unit

(** Functions executed anywhere in the trace, sorted and deduplicated. *)
val executed_functions : t -> string list

(** Segment the trace into task instances: each call to a function in
    [entries] opens a task that spans until the matching return.
    Returns [(entry, executed functions)] per instance; tasks still open
    at the end of the run (e.g. the main loop) are included. *)
val tasks : entries:string list -> t -> (string * string list) list

(** {!tasks} over an already-captured event list in execution order —
    avoids re-copying a trace that was already drained out of the
    interpreter (e.g. the pipeline's memoized [b_events]). *)
val tasks_of :
  entries:string list -> event list -> (string * string list) list

(** Per-global write observation over a mem-traced event stream:
    attribute each recorded write to the innermost active context
    (functions matching [contexts] push on call and pop on return;
    [default] applies outside all of them) and resolve its address to a
    named region with [resolve].  Returns the distinct
    [(context, region)] pairs in first-observation order — the dynamic
    ground truth the sync-schedule soundness oracle (lint L011, fuzz
    sync-soundness) compares against the static may-write sets. *)
val writes_by_context :
  contexts:(string -> bool) ->
  default:string ->
  resolve:(int -> string option) ->
  event list ->
  (string * string) list

val pp_event : Format.formatter -> event -> unit
