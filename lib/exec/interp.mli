(** The firmware interpreter.

    Executes the structured IR against the machine model; every memory
    access goes through the bus so MPU and privilege checks fire where
    hardware would fire them.  Supervisor calls and faults are delivered
    to a pluggable {!handler} — OPEC-Monitor in protected runs. *)

open Opec_ir

(** Runtime termination with a diagnostic (isolation violation,
    sanitization failure, stack overflow, ...). *)
exception Aborted of string

(** The instruction budget ran out (runaway program). *)
exception Fuel_exhausted

(** Description of a faulting access, given to fault handlers so the
    monitor can emulate or retry it. *)
type access_desc =
  | Access_load of { addr : int; width : int }
  | Access_store of { addr : int; width : int; value : int64 }

type fault_action =
  | Retry           (** re-execute the access (the handler fixed the MPU) *)
  | Abort of string

type bus_action =
  | Emulated of int64  (** the handler performed the access *)
  | Bus_abort of string

(** Trap interface (the monitor).  [on_operation_enter] receives the
    evaluated arguments of a call to an operation entry and returns the
    (possibly relocated) arguments to run it with; [on_operation_exit]
    fires when the entry returns.  Both run at the privileged level. *)
type handler = {
  on_operation_enter : entry:Func.t -> args:int64 array -> int64 array;
  on_operation_exit : entry:Func.t -> unit;
  on_mem_fault : access_desc -> Opec_machine.Fault.info -> fault_action;
  on_bus_fault : access_desc -> Opec_machine.Fault.info -> bus_action;
  on_svc : int -> unit;
}

(** Baseline handler: no monitor, any fault aborts. *)
val abort_handler : handler

(** Execution engine.  [Compiled] (the default) translates each function
    body once, at image-load time, into a tree of OCaml closures with no
    opcode dispatch: constants folded and local slots bound into the
    closures, runs of pure instructions fused into superblocks with one
    fuel/cycle charge per run, direct-call targets bound to the callee's
    compiled code, and load/store fast paths that skip the bus's address
    decode when the target region is statically known.  [Decoded]
    resolves locals to array slots and compiles instructions to closures
    with per-instruction dispatch; [Tree] walks the IR with a hashtable
    environment per activation — the reference semantics.  Cycle
    accounting, traces, and memory effects are identical across all
    three; the differential tests replay workloads under every engine
    and assert bit-equal observations. *)
type engine = Tree | Decoded | Compiled

type t

(** [create ~bus ~map program] builds an interpreter.  [entries] lists
    the operation entry functions (calls to them run the SVC switch
    protocol); [fuel] bounds executed instructions; [max_depth] bounds
    the call stack; [engine] selects the execution engine (default
    [Compiled]); [sink] attaches a telemetry collector (default
    {!Opec_obs.Sink.null} — disabled, no allocation, no cycles). *)
val create :
  ?fuel:int ->
  ?max_depth:int ->
  ?handler:handler ->
  ?entries:string list ->
  ?engine:engine ->
  ?sink:Opec_obs.Sink.t ->
  bus:Opec_machine.Bus.t ->
  map:Address_map.t ->
  Program.t ->
  t

(** The engine this interpreter was created with. *)
val engine : t -> engine

val cpu : t -> Opec_machine.Cpu.t

(** Replace the trap handler (used by the cooperative-thread scheduler
    to interpose on the yield SVC). *)
val set_handler : t -> handler -> unit

(** The last data-access fault delivered to the trap handler, if any —
    the faulting access plus the machine's {!Opec_machine.Fault.info}
    (address, access kind, privilege level).  Survives an [Aborted]
    unwind, so post-mortem classifiers (e.g. the attack campaign) can
    recover the faulting address instead of parsing the message. *)
val last_fault : t -> (access_desc * Opec_machine.Fault.info) option

(** The execution trace collected so far. *)
val trace : t -> Trace.t

(** Cycles charged so far (the DWT measurement). *)
val cycles : t -> int64

(** Completed SVC transitions — both traps of the switch protocol, one
    on operation entry and one on exit — so this agrees with the
    monitor's [Stats.switches] on single-threaded runs.  (Threaded runs
    additionally count the scheduler's context switches on the monitor
    side.) *)
val switches : t -> int

(** The attached telemetry sink ({!Opec_obs.Sink.null} by default). *)
val sink : t -> Opec_obs.Sink.t

(** Attach a telemetry sink.  The interpreter emits one
    [Svc_switch] mark per completed SVC transition; recording charges no
    cycles. *)
val set_sink : t -> Opec_obs.Sink.t -> unit

(** Normal termination via the [Halt] instruction. *)
exception Halted

(** Call a function by name with argument values. *)
val call : t -> string -> int64 list -> int64

(** Run the program from [main]; returns on [Halt] or when [main]
    returns.  [reset_stack] (default true) initializes SP from the
    address map. *)
val run : ?reset_stack:bool -> t -> unit
