(* Flat byte memories for flash and SRAM.  Little-endian, like Cortex-M. *)

type t = { base : int; data : Bytes.t }

let create ~base ~size = { base; data = Bytes.make size '\000' }

let size t = Bytes.length t.data
let limit t = t.base + size t
let contains t addr = addr >= t.base && addr < limit t

let in_range t addr bytes = addr >= t.base && addr + bytes <= limit t

(* [read_unchecked]/[write_unchecked] skip the range test: the caller
   has already established [in_range] (the bus region fast paths probe
   or precompute it).  [read]/[write] keep the checked contract. *)
let read_unchecked t addr bytes =
  let off = addr - t.base in
  (* word and byte accesses accumulate in a native int (4 bytes always
     fit) so the hot path boxes a single Int64 instead of one per byte *)
  if bytes = 4 then
    Int64.of_int
      (Char.code (Bytes.unsafe_get t.data off)
      lor (Char.code (Bytes.unsafe_get t.data (off + 1)) lsl 8)
      lor (Char.code (Bytes.unsafe_get t.data (off + 2)) lsl 16)
      lor (Char.code (Bytes.unsafe_get t.data (off + 3)) lsl 24))
  else if bytes = 1 then Int64.of_int (Char.code (Bytes.unsafe_get t.data off))
  else
    let rec go i acc =
      if i < 0 then acc
      else
        go (i - 1)
          (Int64.logor
             (Int64.shift_left acc 8)
             (Int64.of_int (Char.code (Bytes.get t.data (off + i)))))
    in
    go (bytes - 1) 0L

let read t addr bytes =
  if not (in_range t addr bytes) then
    raise (Fault.Bus { addr; access = Fault.Read; privileged = true });
  read_unchecked t addr bytes

let write_unchecked t addr bytes v =
  let off = addr - t.base in
  if bytes = 4 then begin
    (* bytes 0..3 only depend on the low 32 bits, which [to_int] keeps *)
    let x = Int64.to_int v in
    Bytes.unsafe_set t.data off (Char.unsafe_chr (x land 0xFF));
    Bytes.unsafe_set t.data (off + 1) (Char.unsafe_chr ((x lsr 8) land 0xFF));
    Bytes.unsafe_set t.data (off + 2) (Char.unsafe_chr ((x lsr 16) land 0xFF));
    Bytes.unsafe_set t.data (off + 3) (Char.unsafe_chr ((x lsr 24) land 0xFF))
  end
  else if bytes = 1 then
    Bytes.unsafe_set t.data off (Char.unsafe_chr (Int64.to_int v land 0xFF))
  else
    for i = 0 to bytes - 1 do
      Bytes.set t.data (off + i)
        (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xFFL)))
    done

let write t addr bytes v =
  if not (in_range t addr bytes) then
    raise (Fault.Bus { addr; access = Fault.Write; privileged = true });
  write_unchecked t addr bytes v

let blit_out t addr len =
  let off = addr - t.base in
  Bytes.sub t.data off len

let blit_in t addr src =
  let off = addr - t.base in
  Bytes.blit src 0 t.data off (Bytes.length src)
