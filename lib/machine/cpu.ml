(* Core execution state: privilege level, stack pointer, cycle counter.

   The cycle counter stands in for the DWT measurement the paper uses: the
   interpreter charges cycles for every instruction and bus access, and the
   monitor's privileged work is charged on the same counter, so
   OPEC-vs-baseline cycle ratios are computed the same way the paper
   computes its runtime overhead (Section 6.3). *)

type t = {
  mutable privileged : bool;
  mutable sp : int;
  mutable stack_base : int;   (** lowest valid stack address *)
  mutable stack_limit : int;  (** highest valid stack address + 1 *)
  mutable cycles : int;
      (* unboxed [int]: a boxed [int64] here would allocate on every
         charge, and charges happen per instruction, per expression
         node, and per bus access *)
}

let create () =
  { privileged = true; sp = 0; stack_base = 0; stack_limit = 0; cycles = 0 }

let charge t n = t.cycles <- t.cycles + n
let cycles t = Int64.of_int t.cycles

let drop_privilege t = t.privileged <- false
let raise_privilege t = t.privileged <- true

(* Run [f] at the privileged level, restoring the previous level after —
   the hardware exception-entry/exit semantics the monitor relies on. *)
let with_privilege t f =
  let saved = t.privileged in
  t.privileged <- true;
  Fun.protect ~finally:(fun () -> t.privileged <- saved) f

let pp fmt t =
  Fmt.pf fmt "cpu{%s sp=0x%08X cycles=%d}"
    (if t.privileged then "priv" else "unpriv")
    t.sp t.cycles
