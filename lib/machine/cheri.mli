(** CHERI-style capability protection (CompartOS model): per-compartment
    capability tables with byte-granular bounds, no entry budget, and
    bounds-precision (compressed-capability representability) as the
    only constraint. *)

type cap = {
  cap_base : int;
  cap_len : int;
  cap_r : bool;
  cap_w : bool;
  cap_x : bool;
}

type t = { mutable caps : cap list; mutable enforcing : bool }

exception Invalid_cap of string

val mantissa_bits : int

val log2_ceil : int -> int

val representable_align : int -> int
(** Alignment base and length of a capability of the given length must
    satisfy under the compressed (CHERI-concentrate) encoding. *)

val representable : base:int -> len:int -> bool

val round_bounds : base:int -> len:int -> int * int
(** Smallest representable [(base, len)] containing the request. *)

val create : unit -> t

val cap : ?r:bool -> ?w:bool -> ?x:bool -> base:int -> len:int -> unit -> cap
(** @raise Invalid_cap on empty or unrepresentable bounds. *)

val clear : t -> unit
val add : t -> cap -> unit
val grant : t -> cap list -> unit
val enable : t -> unit
val caps : t -> cap list
val cap_count : t -> int
val cap_matches : cap -> int -> bool

val check :
  t ->
  privileged:bool ->
  addr:int ->
  access:Fault.access ->
  (unit, Fault.info) result

val pp_cap : Format.formatter -> cap -> unit
val pp : Format.formatter -> t -> unit
