(** Arm POE / MPK-style permission-overlay keys (Complets model):
    byte-granular tagged windows, a fixed pool of permission keys, and
    key recycling instead of region eviction on exhaustion. *)

type perm = No_access | Read_only | Read_write

type overlay = {
  ov_base : int;
  ov_limit : int;
  mutable ov_key : int;
}

type t = {
  mutable overlays : overlay list;
  por : perm array;
  por_x : bool array;
  mutable enforcing : bool;
}

exception Invalid_overlay of string

val key_count : int
val no_key : int
val granule : int

val create : unit -> t

val overlay : ?key:int -> base:int -> limit:int -> unit -> overlay
(** @raise Invalid_overlay on an empty, misaligned, or bad-key window. *)

val clear : t -> unit
val add : t -> overlay -> unit
val set_key : t -> int -> ?x:bool -> perm -> unit
val enable : t -> unit
val overlays : t -> overlay list
val find : t -> int -> overlay option

val reclaim_key : t -> int -> overlay list
(** Strip [key] from every window holding it; returns the victims. *)

val check :
  t ->
  privileged:bool ->
  addr:int ->
  access:Fault.access ->
  (unit, Fault.info) result

val pp_overlay : Format.formatter -> overlay -> unit
val pp : Format.formatter -> t -> unit
