(* A CHERI-style capability protection model (CompartOS: CHERI-based
   linkage compartmentalization for embedded systems).

   What matters to OPEC, contrasted with the ARM MPU:
   - no fixed region budget: a compartment holds a *table* of
     capabilities, one per object it may touch, not 8 slots;
   - no power-of-two alignment: bounds are byte-granular for small
     objects.  The only constraint is *bounds precision*: compressed
     capabilities (CHERI-concentrate) encode bounds with a limited
     mantissa, so large objects must be representable — base and length
     aligned to 2^(log2ceil(len) - mantissa_bits);
   - no eviction faults: every grant is resident, so the monitor never
     rotates windows at runtime.  A fault is always a real violation.

   Privileged code runs with the omnipotent default capability (the
   monitor's almighty root), mirroring PRIVDEFENA on the MPU and
   machine-mode pass-through on the PMP. *)

type cap = {
  cap_base : int;
  cap_len : int;
  cap_r : bool;
  cap_w : bool;
  cap_x : bool;
}

type t = { mutable caps : cap list; mutable enforcing : bool }

exception Invalid_cap of string

(* CHERI-concentrate mantissa width.  Real encodings use ~12-14 bits of
   mantissa for a 32-bit address space; 12 keeps every object below 4
   KiB byte-precise, which is where OPEC's sections live. *)
let mantissa_bits = 12

let log2_ceil n =
  let rec go k = if 1 lsl k >= n then k else go (k + 1) in
  if n <= 1 then 0 else go 0

(* Alignment both bounds of a [len]-byte capability must satisfy to be
   representable under the compressed encoding. *)
let representable_align len =
  if len <= 1 lsl mantissa_bits then 1
  else 1 lsl (log2_ceil len - mantissa_bits)

let representable ~base ~len =
  let a = representable_align len in
  base mod a = 0 && len mod a = 0

(* Smallest representable bounds containing [base, base+len) — the CRAP
   (representable-alignment) rounding a CHERI compiler/loader performs.
   Widening the length can raise the required alignment, so iterate to
   the fixpoint. *)
let round_bounds ~base ~len =
  let rec go a =
    let base' = base / a * a in
    let limit' = (base + len + a - 1) / a * a in
    let len' = limit' - base' in
    let a' = representable_align len' in
    if a' <= a then (base', len') else go a'
  in
  go (max 1 (representable_align len))

let create () = { caps = []; enforcing = false }

(* Build a capability, refusing unrepresentable bounds (callers round
   with {!round_bounds} first when widening is acceptable). *)
let cap ?(r = true) ?(w = false) ?(x = false) ~base ~len () =
  if len <= 0 then raise (Invalid_cap "empty capability");
  if not (representable ~base ~len) then
    raise
      (Invalid_cap
         (Printf.sprintf
            "bounds [0x%08X,+%d) not representable (need %d-byte alignment)"
            base len (representable_align len)));
  { cap_base = base; cap_len = len; cap_r = r; cap_w = w; cap_x = x }

let clear t = t.caps <- []
let add t c = t.caps <- t.caps @ [ c ]
let grant t cs = t.caps <- t.caps @ cs
let enable t = t.enforcing <- true
let caps t = t.caps
let cap_count t = List.length t.caps

let cap_matches c addr = addr >= c.cap_base && addr < c.cap_base + c.cap_len

let cap_allows c (access : Fault.access) =
  match access with
  | Fault.Read -> c.cap_r
  | Fault.Write -> c.cap_w
  | Fault.Execute -> c.cap_x && c.cap_r

(* Check one access: any capability in the table that covers the address
   and carries the permission grants it (capabilities are grants, not a
   priority scheme — there is no "deny" capability to shadow another).
   Privileged code holds the default capability and always passes. *)
let check t ~privileged ~addr ~(access : Fault.access) =
  let info = { Fault.addr; access; privileged } in
  if not t.enforcing then Ok ()
  else if privileged then Ok ()
  else if
    List.exists (fun c -> cap_matches c addr && cap_allows c access) t.caps
  then Ok ()
  else Error info

let pp_cap fmt c =
  Fmt.pf fmt "cap [0x%08X,+%d) %s%s%s" c.cap_base c.cap_len
    (if c.cap_r then "r" else "-")
    (if c.cap_w then "w" else "-")
    (if c.cap_x then "x" else "-")

let pp fmt t =
  Fmt.pf fmt "@[<v>CHERI %s (%d caps)@,%a@]"
    (if t.enforcing then "enforcing" else "off")
    (List.length t.caps)
    Fmt.(list ~sep:(any "@,") pp_cap)
    t.caps
