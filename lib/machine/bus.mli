(** The system bus: routes accesses to flash, SRAM, mapped devices, and
    the PPB, enforcing MPU and privilege rules (Section 2).

    PPB accesses require the privileged level (else {!Fault.Bus}); all
    other accesses are MPU-checked; unmapped addresses and flash writes
    bus-fault. *)

type t = {
  flash : Memory.t;
  sram : Memory.t;
  mutable devices : Device.t list;
  mpu : Mpu.t;
  mutable prot : Backend.state;
  cpu : Cpu.t;
}

val create : board:Memmap.board -> t

(** Swap the enforcement backend.  The default is [Backend.Mpu_state]
    over the bus's own [mpu], so MPU-backed machines behave exactly as
    before the backend abstraction existed. *)
val set_protection : t -> Backend.state -> unit

val protection : t -> Backend.state

(** Map a device window onto the bus. Devices attached later take
    precedence on overlapping ranges. *)
val attach : t -> Device.t -> unit

val find_device : t -> int -> Device.t option

(** [read t addr width] / [write t addr width v] perform checked
    accesses at the CPU's current privilege level, charging one cycle. *)
val read : t -> int -> int -> int64

val write : t -> int -> int -> int64 -> unit

(** Fast paths for accesses whose region was resolved at translation
    time (the closure-compiled interpreter engine): identical charge,
    MPU check, and faults to {!read}/{!write}, skipping only the region
    classification and memory-range scans.  The caller guarantees the
    routing precondition — the address lies in the named region. *)
val read_sram : t -> int -> int -> int64

val write_sram : t -> int -> int -> int64 -> unit

val read_flash : t -> int -> int -> int64

val read_device : t -> int -> int -> int64

val write_device : t -> int -> int -> int64 -> unit

(** Privileged raw accessors for the loader and the monitor: bypass the
    MPU (background map) but still route to devices. *)
val read_raw : t -> int -> int -> int64

val write_raw : t -> int -> int -> int64 -> unit

(** Instruction-fetch permission check for a function entry address. *)
val check_execute : t -> int -> unit
