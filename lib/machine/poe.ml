(* An Arm POE / MPK-style permission-overlay-key protection model
   (Complets: keying embedded compartments with permission overlays).

   What matters to OPEC, contrasted with the ARM MPU:
   - memory is tagged per window with a *key* (0..7); a per-context
     permission register ([por]) says what the unprivileged level may do
     through each key.  Windows are byte-granular up to a small tagging
     granule — no power-of-two rounding;
   - the scarce resource is the *key count*, not a region budget: any
     number of windows can be tagged, but only [key_count] distinct
     permission classes exist at once.  A window whose key has been
     reclaimed ([no_key]) faults at the unprivileged level, and the
     monitor responds with *key recycling* — retag, don't evict;
   - the first matching window decides (windows never overlap in OPEC's
     plan; specific windows are pushed before the background).

   Privileged code ignores overlays (POR restricts EL0 only), mirroring
   PRIVDEFENA on the MPU. *)

type perm = No_access | Read_only | Read_write

type overlay = {
  ov_base : int;
  ov_limit : int;  (** [ov_base, ov_limit) *)
  mutable ov_key : int;  (** 0..key_count-1, or {!no_key} *)
}

type t = {
  mutable overlays : overlay list;  (** first match wins *)
  por : perm array;  (** per-key unprivileged data permission *)
  por_x : bool array;  (** per-key unprivileged execute permission *)
  mutable enforcing : bool;
}

exception Invalid_overlay of string

let key_count = 8
let no_key = -1

(* Tagging granule: overlays are tracked per 32-byte line (matching the
   MPU's smallest sub-region granularity, far finer than its region
   rounding). *)
let granule = 32

let create () =
  { overlays = [];
    por = Array.make key_count No_access;
    por_x = Array.make key_count false;
    enforcing = false }

let overlay ?(key = no_key) ~base ~limit () =
  if limit <= base then raise (Invalid_overlay "empty overlay window");
  if base mod granule <> 0 || limit mod granule <> 0 then
    raise
      (Invalid_overlay
         (Printf.sprintf "window [0x%08X,0x%08X) not %d-byte aligned" base
            limit granule));
  if key <> no_key && (key < 0 || key >= key_count) then
    raise (Invalid_overlay (Printf.sprintf "key %d out of range" key));
  { ov_base = base; ov_limit = limit; ov_key = key }

let clear t =
  t.overlays <- [];
  Array.fill t.por 0 key_count No_access;
  Array.fill t.por_x 0 key_count false

let add t ov = t.overlays <- t.overlays @ [ ov ]

let set_key t key ?(x = false) perm =
  if key < 0 || key >= key_count then
    raise (Invalid_overlay (Printf.sprintf "key %d out of range" key));
  t.por.(key) <- perm;
  t.por_x.(key) <- x

let enable t = t.enforcing <- true
let overlays t = t.overlays

let find t addr =
  List.find_opt
    (fun ov -> addr >= ov.ov_base && addr < ov.ov_limit)
    t.overlays

(* Retag every window currently holding [key] to {!no_key} and return
   them — the victim half of the monitor's key-recycling step. *)
let reclaim_key t key =
  let victims =
    List.filter (fun ov -> ov.ov_key = key) t.overlays
  in
  List.iter (fun ov -> ov.ov_key <- no_key) victims;
  victims

let perm_allows perm (access : Fault.access) =
  match (perm, access) with
  | Read_write, (Fault.Read | Fault.Write) -> true
  | Read_only, Fault.Read -> true
  | Read_only, Fault.Write -> false
  | No_access, (Fault.Read | Fault.Write) -> false
  | _, Fault.Execute -> perm <> No_access

(* Check one access: the first overlay covering the address decides via
   its key's POR entry; a keyless window (or no window at all) faults at
   the unprivileged level.  Privileged accesses bypass overlays. *)
let check t ~privileged ~addr ~(access : Fault.access) =
  let info = { Fault.addr; access; privileged } in
  if not t.enforcing then Ok ()
  else if privileged then Ok ()
  else
    match find t addr with
    | None -> Error info
    | Some ov ->
      if ov.ov_key = no_key then Error info
      else
        let perm = t.por.(ov.ov_key) in
        let allowed =
          match access with
          | Fault.Execute -> t.por_x.(ov.ov_key) && perm_allows perm Fault.Read
          | Fault.Read | Fault.Write -> perm_allows perm access
        in
        if allowed then Ok () else Error info

let pp_perm fmt p =
  Fmt.string fmt
    (match p with No_access -> "NA" | Read_only -> "RO" | Read_write -> "RW")

let pp_overlay fmt ov =
  Fmt.pf fmt "[0x%08X,0x%08X) key=%s" ov.ov_base ov.ov_limit
    (if ov.ov_key = no_key then "-" else string_of_int ov.ov_key)

let pp fmt t =
  Fmt.pf fmt "@[<v>POE %s@,keys: %a@,%a@]"
    (if t.enforcing then "enforcing" else "off")
    Fmt.(
      list ~sep:(any " ") (fun fmt (i, p, x) ->
          Fmt.pf fmt "%d:%a%s" i pp_perm p (if x then "x" else "")))
    (Array.to_list (Array.mapi (fun i p -> (i, p, t.por_x.(i))) t.por))
    Fmt.(list ~sep:(any "@,") pp_overlay)
    t.overlays
