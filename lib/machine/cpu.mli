(** Core execution state: privilege level, stack pointer, and the cycle
    counter standing in for the paper's DWT measurements. *)

type t = {
  mutable privileged : bool;
  mutable sp : int;
  mutable stack_base : int;   (** lowest valid stack address *)
  mutable stack_limit : int;  (** one past the highest valid stack address *)
  mutable cycles : int;
      (** unboxed on purpose: [charge] runs on every instruction,
          expression node, and bus access, and a boxed [int64] field
          would allocate on each of them.  63 bits dwarf any run's
          cycle count; the public reading is still {!cycles}'s
          [int64]. *)
}

(** A privileged CPU with an unset stack. *)
val create : unit -> t

(** Charge [n] cycles. *)
val charge : t -> int -> unit

val cycles : t -> int64
val drop_privilege : t -> unit
val raise_privilege : t -> unit

(** Run [f] at the privileged level, restoring the previous level —
    the exception-entry/exit semantics the monitor relies on. *)
val with_privilege : t -> (unit -> 'a) -> 'a

val pp : Format.formatter -> t -> unit
