(** ARMv7-M-like machine model: memory map, MPU, privilege levels, devices.

    This library is the hardware substrate substitution described in
    DESIGN.md: everything OPEC's isolation depends on — two privilege
    levels, the 8-region MPU with sub-regions and alignment rules, the PPB
    bus-fault behaviour, and the DWT cycle counter — is modeled to the
    ARMv7-M documented semantics. *)

module Memmap = Memmap
module Fault = Fault
module Mpu = Mpu
module Pmp = Pmp
module Cheri = Cheri
module Poe = Poe
module Backend = Backend
module Memory = Memory
module Device = Device
module Cpu = Cpu
module Bus = Bus
module Uart = Uart
module Gpio = Gpio
module Sd_card = Sd_card
module Lcd = Lcd
module Ethernet = Ethernet
module Dcmi = Dcmi
module Usb_msc = Usb_msc
module Core_periph = Core_periph
