(* The ARMv7-M Memory Protection Unit (paper, Section 2.2).

   Modeled constraints, all load-bearing for OPEC's design:
   - 8 regions, numbered 0..7; on overlap the highest-numbered enabled
     region that matches decides the access permission;
   - region size is a power of two, at least 32 bytes;
   - region base must be aligned to the region size;
   - regions of 256 bytes or more are split into 8 equal sub-regions, each
     of which can be disabled individually; an address falling in a
     disabled sub-region is treated as if the region did not match, so a
     lower-numbered overlapping region confines it;
   - with the default memory map enabled (PRIVDEFENA), privileged accesses
     that match no region use the background map; unprivileged accesses
     that match no region fault. *)

type perm = No_access | Read_only | Read_write

type region = {
  base : int;
  size_log2 : int;       (** region covers [2^size_log2] bytes, >= 5 *)
  srd : int;             (** 8-bit sub-region disable mask *)
  privileged : perm;
  unprivileged : perm;
  executable : bool;
}

type t = {
  mutable enabled : bool;
  regions : region option array;  (** slots 0..7 *)
}

exception Invalid_region of string

let region_count = 8
let min_size_log2 = 5 (* 32 bytes *)
let subregion_min_log2 = 8 (* SRD is only implemented for >= 256-byte regions *)

let create () = { enabled = false; regions = Array.make region_count None }

let region ?(srd = 0) ?(executable = false) ~base ~size_log2 ~privileged
    ~unprivileged () =
  if size_log2 < min_size_log2 || size_log2 > 32 then
    raise (Invalid_region (Printf.sprintf "size 2^%d out of range" size_log2));
  let size = 1 lsl size_log2 in
  if base land (size - 1) <> 0 then
    raise
      (Invalid_region
         (Printf.sprintf "base 0x%08X not aligned to size 0x%X" base size));
  if srd < 0 || srd > 0xFF then raise (Invalid_region "srd out of range");
  { base; size_log2; srd; privileged; unprivileged; executable }

(* Smallest legal region (size, log2) able to cover [bytes] bytes. *)
let region_size_for bytes =
  let rec go log2 = if 1 lsl log2 >= bytes then log2 else go (log2 + 1) in
  let log2 = go min_size_log2 in
  (1 lsl log2, log2)

let set t slot r =
  if slot < 0 || slot >= region_count then
    raise (Invalid_region (Printf.sprintf "region number %d" slot));
  t.regions.(slot) <- r

let get t slot = t.regions.(slot)
let enable t = t.enabled <- true
let disable t = t.enabled <- false

let clear t = Array.fill t.regions 0 region_count None

(* Does [r] match [addr], taking disabled sub-regions into account? *)
let region_matches r addr =
  let size = 1 lsl r.size_log2 in
  if addr < r.base || addr >= r.base + size then false
  else if r.size_log2 < subregion_min_log2 || r.srd = 0 then true
  else
    let sub = (addr - r.base) / (size / 8) in
    r.srd land (1 lsl sub) = 0

let perm_allows perm access =
  match (perm, (access : Fault.access)) with
  | Read_write, (Read | Write) -> true
  | Read_only, Read -> true
  | Read_only, Write -> false
  | No_access, (Read | Write) -> false
  | (Read_write | Read_only | No_access), Execute ->
    (* execute additionally requires read permission and !XN; checked in
       [check] where the region is known *)
    perm <> No_access

(* Check a single access.  Returns [Ok ()] or the faulting info.  The
   info record is only built on the fault paths: this runs per bus
   access, and the common allow outcome must not allocate. *)
let check t ~privileged ~addr ~(access : Fault.access) =
  if not t.enabled then Ok ()
  else
    let rec highest n best =
      if n >= region_count then best
      else
        let best =
          match t.regions.(n) with
          | Some r when region_matches r addr -> Some r
          | Some _ | None -> best
        in
        highest (n + 1) best
    in
    match highest 0 None with
    | Some r ->
      let perm = if privileged then r.privileged else r.unprivileged in
      let allowed =
        match access with
        | Execute -> r.executable && perm_allows perm Fault.Read
        | Read | Write -> perm_allows perm access
      in
      if allowed then Ok () else Error { Fault.addr; access; privileged }
    | None ->
      (* PRIVDEFENA behaviour: background map for privileged code only. *)
      if privileged && access <> Fault.Execute then Ok ()
      else if privileged then Ok () (* privileged execute uses default map *)
      else Error { Fault.addr; access; privileged }

let pp_perm fmt p =
  Fmt.string fmt
    (match p with No_access -> "NA" | Read_only -> "RO" | Read_write -> "RW")

let pp_region fmt r =
  Fmt.pf fmt "base=0x%08X size=2^%d srd=%02X priv=%a unpriv=%a%s" r.base
    r.size_log2 r.srd pp_perm r.privileged pp_perm r.unprivileged
    (if r.executable then " X" else "")

let pp fmt t =
  Fmt.pf fmt "@[<v>MPU %s@,%a@]"
    (if t.enabled then "enabled" else "disabled")
    Fmt.(list ~sep:(any "@,") (fun fmt (i, r) ->
      match r with
      | None -> Fmt.pf fmt "  region %d: <unused>" i
      | Some r -> Fmt.pf fmt "  region %d: %a" i pp_region r))
    (Array.to_list (Array.mapi (fun i r -> (i, r)) t.regions))
