(* The enforcement-backend abstraction.

   OPEC's isolation guarantee is substrate-independent: what the design
   needs from hardware is (1) an unprivileged default-deny map with a
   read-only background view, (2) per-operation read-write windows over
   the stack prefix / data section / heap / permitted peripherals, and
   (3) a fault the monitor can classify.  Each substrate meets those
   with different *constraints*, which this module reifies as a
   descriptor the plan and layout passes consult instead of hard-coding
   the ARMv7-M rules:

   - entry budget: MPU 8 regions, PMP 16 entries, POE 8 keys, CHERI
     unbounded;
   - alignment rule: MPU/PMP naturally-aligned powers of two, POE a
     small tagging granule, CHERI byte-granular under bounds precision;
   - match priority: MPU highest-numbered wins, PMP lowest wins,
     POE first match, CHERI any grant suffices;
   - fault model: MPU/PMP rotate evicted windows back in (region
     virtualization), POE recycles keys, CHERI never faults on a
     planned access (every grant is resident). *)

type kind = Mpu | Pmp | Cheri | Poe

let all_kinds = [ Mpu; Pmp; Cheri; Poe ]

let kind_name = function
  | Mpu -> "mpu"
  | Pmp -> "pmp"
  | Cheri -> "cheri"
  | Poe -> "poe"

let kind_of_name s =
  match String.lowercase_ascii s with
  | "mpu" -> Some Mpu
  | "pmp" -> Some Pmp
  | "cheri" -> Some Cheri
  | "poe" | "mpk" -> Some Poe
  | _ -> None

type alignment =
  | Pow2 of { min_log2 : int }
      (** naturally aligned power-of-two windows of at least
          [2^min_log2] bytes *)
  | Granule of { bytes : int }
      (** byte-granular windows up to a tagging granule *)
  | Precision of { mantissa_bits : int }
      (** byte-granular for small windows; large windows need
          representable (compressed-capability) bounds *)

type priority =
  | Highest_wins  (** highest-numbered matching entry decides (MPU) *)
  | Lowest_wins   (** lowest-numbered / first matching entry decides *)
  | Any_grant     (** grants accumulate; any matching grant suffices *)

type fault_model =
  | Region_eviction  (** planned windows beyond the budget are rotated
                         in from the fault handler *)
  | Key_recycling    (** windows stay resident; scarce keys are
                         reassigned from the fault handler *)
  | Capability_bounds  (** no budget: every planned grant is resident,
                           a fault is always a violation *)

type descriptor = {
  d_kind : kind;
  d_entry_budget : int option;  (** simultaneously-resident windows/keys *)
  d_alignment : alignment;
  d_priority : priority;
  d_fault_model : fault_model;
}

let descriptor = function
  | Mpu ->
    { d_kind = Mpu;
      d_entry_budget = Some Mpu.region_count;
      d_alignment = Pow2 { min_log2 = Mpu.min_size_log2 };
      d_priority = Highest_wins;
      d_fault_model = Region_eviction }
  | Pmp ->
    { d_kind = Pmp;
      d_entry_budget = Some Pmp.entry_count;
      d_alignment = Pow2 { min_log2 = 3 };
      d_priority = Lowest_wins;
      d_fault_model = Region_eviction }
  | Cheri ->
    { d_kind = Cheri;
      d_entry_budget = None;
      d_alignment = Precision { mantissa_bits = Cheri.mantissa_bits };
      d_priority = Any_grant;
      d_fault_model = Capability_bounds }
  | Poe ->
    { d_kind = Poe;
      d_entry_budget = Some Poe.key_count;
      d_alignment = Granule { bytes = Poe.granule };
      d_priority = Lowest_wins;
      d_fault_model = Key_recycling }

let round_up a n = (n + a - 1) / a * a

(* The (alignment, span) a window of [bytes] bytes costs under the
   backend's encoding: the base must be [alignment]-aligned and the
   window reserves [span] bytes.  For power-of-two backends this is
   exactly {!Mpu.region_size_for} (so the MPU layout is bit-identical to
   the pre-abstraction plan); capability and key backends pack tighter. *)
let region_fit d bytes =
  match d.d_alignment with
  | Pow2 { min_log2 } ->
    let rec go k = if 1 lsl k >= bytes then k else go (k + 1) in
    let k = go min_log2 in
    (1 lsl k, 1 lsl k)
  | Granule { bytes = g } ->
    let span = max g (round_up g bytes) in
    (g, span)
  | Precision _ ->
    (* widening the span can raise the representable alignment, so
       iterate to the fixpoint, mirroring {!Cheri.round_bounds} *)
    let rec go a =
      let span = max 1 (round_up a bytes) in
      let a' = Cheri.representable_align span in
      if a' <= a then (max a 1, span) else go a'
    in
    go (max 1 (Cheri.representable_align (max bytes 1)))

(* --- runtime state ------------------------------------------------------- *)

type state =
  | Mpu_state of Mpu.t
  | Pmp_state of Pmp.t
  | Cheri_state of Cheri.t
  | Poe_state of Poe.t

let create = function
  | Mpu -> Mpu_state (Mpu.create ())
  | Pmp -> Pmp_state (Pmp.create ())
  | Cheri -> Cheri_state (Cheri.create ())
  | Poe -> Poe_state (Poe.create ())

let kind_of = function
  | Mpu_state _ -> Mpu
  | Pmp_state _ -> Pmp
  | Cheri_state _ -> Cheri
  | Poe_state _ -> Poe

let check st ~privileged ~addr ~access =
  match st with
  | Mpu_state m -> Mpu.check m ~privileged ~addr ~access
  | Pmp_state p -> Pmp.check p ~privileged ~addr ~access
  | Cheri_state c -> Cheri.check c ~privileged ~addr ~access
  | Poe_state p -> Poe.check p ~privileged ~addr ~access

let enable = function
  | Mpu_state m -> Mpu.enable m
  | Pmp_state p -> Pmp.enable p
  | Cheri_state c -> Cheri.enable c
  | Poe_state p -> Poe.enable p

let pp fmt = function
  | Mpu_state m -> Mpu.pp fmt m
  | Pmp_state p ->
    Fmt.pf fmt "@[<v>PMP@,%a@]"
      Fmt.(
        list ~sep:(any "@,") (fun fmt (i, e) ->
            Fmt.pf fmt "  entry %d: %a" i Pmp.pp_entry e))
      (List.filteri
         (fun _ (_, e) -> e.Pmp.mode <> Pmp.Off)
         (List.init Pmp.entry_count (fun i -> (i, Pmp.get p i))))
  | Cheri_state c -> Cheri.pp fmt c
  | Poe_state p -> Poe.pp fmt p
