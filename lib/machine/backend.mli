(** The enforcement-backend abstraction: a constraint descriptor per
    substrate (entry budget, alignment rule, match priority, fault
    model) and a uniform runtime state + check over the four hardware
    models (ARMv7-M MPU, RISC-V PMP, CHERI capabilities, Arm POE/MPK
    keys). *)

type kind = Mpu | Pmp | Cheri | Poe

val all_kinds : kind list
val kind_name : kind -> string
val kind_of_name : string -> kind option

type alignment =
  | Pow2 of { min_log2 : int }
  | Granule of { bytes : int }
  | Precision of { mantissa_bits : int }

type priority = Highest_wins | Lowest_wins | Any_grant

type fault_model = Region_eviction | Key_recycling | Capability_bounds

type descriptor = {
  d_kind : kind;
  d_entry_budget : int option;
  d_alignment : alignment;
  d_priority : priority;
  d_fault_model : fault_model;
}

val descriptor : kind -> descriptor

val region_fit : descriptor -> int -> int * int
(** [region_fit d bytes] is the [(alignment, span)] a window covering
    [bytes] bytes costs under the backend's encoding.  Identical to
    [Mpu.region_size_for] for power-of-two backends. *)

type state =
  | Mpu_state of Mpu.t
  | Pmp_state of Pmp.t
  | Cheri_state of Cheri.t
  | Poe_state of Poe.t

val create : kind -> state
val kind_of : state -> kind

val check :
  state ->
  privileged:bool ->
  addr:int ->
  access:Fault.access ->
  (unit, Fault.info) result

val enable : state -> unit
val pp : Format.formatter -> state -> unit
