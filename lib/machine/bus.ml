(* The system bus: routes accesses to flash, SRAM, mapped devices, and the
   PPB, enforcing the MPU and the privilege rules of Section 2.

   Check order models the hardware:
   1. PPB accesses require the privileged level, else bus fault;
   2. the MPU checks every non-PPB access (the ARM MPU does not confine
      PPB accesses);
   3. unmapped addresses bus-fault;
   4. flash writes bus-fault (the model has no flash programming). *)

type t = {
  flash : Memory.t;
  sram : Memory.t;
  mutable devices : Device.t list;
  mpu : Mpu.t;
  mutable prot : Backend.state;
      (** the active enforcement backend; defaults to [Mpu_state mpu],
          the same MPU object, so legacy pokes through [mpu] stay
          authoritative until another backend is installed *)
  cpu : Cpu.t;
}

let create ~(board : Memmap.board) =
  let cpu = Cpu.create () in
  let mpu = Mpu.create () in
  { flash = Memory.create ~base:Memmap.flash_base ~size:board.flash_size;
    sram = Memory.create ~base:Memmap.sram_base ~size:board.sram_size;
    devices = [];
    mpu;
    prot = Backend.Mpu_state mpu;
    cpu }

let attach t d = t.devices <- d :: t.devices

let find_device t addr = List.find_opt (fun d -> Device.contains d addr) t.devices

let set_protection t st = t.prot <- st
let protection t = t.prot

let mpu_check t ~addr ~access =
  match t.prot with
  (* disabled-MPU short circuit: baseline runs take this on every bus
     access, so don't pay two cross-module calls to learn "allowed" *)
  | Backend.Mpu_state m when not m.Mpu.enabled -> ()
  | st -> (
    match Backend.check st ~privileged:t.cpu.Cpu.privileged ~addr ~access with
    | Ok () -> ()
    | Error info -> raise (Fault.Mem_manage info))

let fault_bus t ~addr ~access =
  raise (Fault.Bus { Fault.addr; access; privileged = t.cpu.Cpu.privileged })

(* Read [width] bytes at [addr] honouring privilege and MPU. *)
let read t addr width =
  Cpu.charge t.cpu 1;
  match Memmap.classify addr with
  | Memmap.Ppb ->
    if not t.cpu.Cpu.privileged then fault_bus t ~addr ~access:Fault.Read;
    (match find_device t addr with
    | Some d -> d.Device.read (addr - d.Device.base) width
    | None -> fault_bus t ~addr ~access:Fault.Read)
  | Memmap.Code | Memmap.Sram | Memmap.Peripheral | Memmap.External_ram
  | Memmap.External_device | Memmap.Vendor ->
    mpu_check t ~addr ~access:Fault.Read;
    if Memory.contains t.flash addr then Memory.read t.flash addr width
    else if Memory.contains t.sram addr then Memory.read t.sram addr width
    else (
      match find_device t addr with
      | Some d -> d.Device.read (addr - d.Device.base) width
      | None -> fault_bus t ~addr ~access:Fault.Read)

let write t addr width v =
  Cpu.charge t.cpu 1;
  match Memmap.classify addr with
  | Memmap.Ppb ->
    if not t.cpu.Cpu.privileged then fault_bus t ~addr ~access:Fault.Write;
    (match find_device t addr with
    | Some d -> d.Device.write (addr - d.Device.base) width v
    | None -> fault_bus t ~addr ~access:Fault.Write)
  | Memmap.Code | Memmap.Sram | Memmap.Peripheral | Memmap.External_ram
  | Memmap.External_device | Memmap.Vendor ->
    mpu_check t ~addr ~access:Fault.Write;
    if Memory.contains t.flash addr then fault_bus t ~addr ~access:Fault.Write
    else if Memory.contains t.sram addr then Memory.write t.sram addr width v
    else (
      match find_device t addr with
      | Some d -> d.Device.write (addr - d.Device.base) width v
      | None -> fault_bus t ~addr ~access:Fault.Write)

(* Fast paths for translation-time-routed accesses (the closure-compiled
   interpreter engine): same one-cycle charge, same MPU check, same fault
   behaviour as [read]/[write] for an address whose region is already
   known — only the region classification and the memory-range scans are
   skipped.  Callers guarantee the routing precondition (e.g. the address
   is in SRAM range for [read_sram]). *)
let read_sram t addr width =
  Cpu.charge t.cpu 1;
  mpu_check t ~addr ~access:Fault.Read;
  Memory.read_unchecked t.sram addr width

let write_sram t addr width v =
  Cpu.charge t.cpu 1;
  mpu_check t ~addr ~access:Fault.Write;
  Memory.write_unchecked t.sram addr width v

let read_flash t addr width =
  Cpu.charge t.cpu 1;
  mpu_check t ~addr ~access:Fault.Read;
  Memory.read_unchecked t.flash addr width

let read_device t addr width =
  Cpu.charge t.cpu 1;
  mpu_check t ~addr ~access:Fault.Read;
  match find_device t addr with
  | Some d -> d.Device.read (addr - d.Device.base) width
  | None -> fault_bus t ~addr ~access:Fault.Read

let write_device t addr width v =
  Cpu.charge t.cpu 1;
  mpu_check t ~addr ~access:Fault.Write;
  match find_device t addr with
  | Some d -> d.Device.write (addr - d.Device.base) width v
  | None -> fault_bus t ~addr ~access:Fault.Write

(* Privileged raw accessors for the monitor and the loader: bypass the
   MPU (the monitor runs on the background map) but still route devices. *)
let read_raw t addr width =
  Cpu.with_privilege t.cpu (fun () ->
      if Memory.contains t.flash addr then Memory.read t.flash addr width
      else if Memory.contains t.sram addr then Memory.read t.sram addr width
      else
        match find_device t addr with
        | Some d -> d.Device.read (addr - d.Device.base) width
        | None -> fault_bus t ~addr ~access:Fault.Read)

let write_raw t addr width v =
  Cpu.with_privilege t.cpu (fun () ->
      if Memory.contains t.flash addr then Memory.write t.flash addr width v
      else if Memory.contains t.sram addr then Memory.write t.sram addr width v
      else
        match find_device t addr with
        | Some d -> d.Device.write (addr - d.Device.base) width v
        | None -> fault_bus t ~addr ~access:Fault.Write)

(* Check an instruction fetch from [addr] (function entry). *)
let check_execute t addr =
  match Memmap.classify addr with
  | Memmap.Ppb -> fault_bus t ~addr ~access:Fault.Execute
  | Memmap.Code | Memmap.Sram | Memmap.Peripheral | Memmap.External_ram
  | Memmap.External_device | Memmap.Vendor ->
    mpu_check t ~addr ~access:Fault.Execute
