(** Flat little-endian byte memories for flash and SRAM. *)

type t

val create : base:int -> size:int -> t
val size : t -> int
val limit : t -> int
val contains : t -> int -> bool
val in_range : t -> int -> int -> bool

(** [read t addr bytes] / [write t addr bytes v]: little-endian accesses
    of 1..8 bytes; out-of-range accesses raise {!Fault.Bus}. *)
val read : t -> int -> int -> int64

val write : t -> int -> int -> int64 -> unit

(** Range-check-free variants for callers that have already established
    {!in_range} (the bus region fast paths).  Out-of-range accesses are
    undefined behaviour — never call these on an unvalidated address. *)
val read_unchecked : t -> int -> int -> int64

val write_unchecked : t -> int -> int -> int64 -> unit

(** Bulk extraction/injection for loaders and tests. *)
val blit_out : t -> int -> int -> Bytes.t

val blit_in : t -> int -> Bytes.t -> unit
