(** opec.obs — structured, cycle-timestamped monitor telemetry:
    sink/event model, per-operation aggregation, and exporters. *)

module Sink = Sink
module Agg = Agg
module Export = Export
