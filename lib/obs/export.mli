(** Telemetry exporters: human text, machine JSON, and Chrome
    trace-event JSON (loadable in Perfetto / chrome://tracing).

    All output is deterministic for a given event stream. Chrome traces
    report cycles through the microsecond [ts]/[dur] fields — absolute
    times read as a 1 MHz core, relative widths are exact. *)

val text : ?events:bool -> Sink.event list -> string
val json : Sink.event list -> string
val chrome : Sink.event list -> string

type format = Text | Json | Chrome

val format_of_string : string -> format option
val format_name : format -> string
val render : format -> Sink.event list -> string
