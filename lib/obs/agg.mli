(** Per-operation aggregation over a telemetry stream: switch-latency
    histograms, a source→destination switch matrix, and per-phase cycle
    and byte totals (paper, Section 6.3). *)

val hist_buckets : int

(** Power-of-two latency histogram: bucket [i] counts spans costing
    [2{^i} .. 2{^i+1}-1] cycles. *)
type hist = {
  buckets : int array;
  mutable samples : int;
  mutable total : int64;
  mutable min : int64;
  mutable max : int64;
}

val hist_create : unit -> hist

(** Record one sample. *)
val hist_add : hist -> int64 -> unit

val hist_mean : hist -> float

(** [hist_percentile h q] estimates the [q]-quantile ([0. .. 1.], e.g.
    [0.99] for p99) of the samples: the power-of-two bucket holding the
    q-th sample, interpolated linearly inside the bucket and clamped to
    the observed [min]/[max].  [0L] on an empty histogram. *)
val hist_percentile : hist -> float -> int64

type phase_total = {
  mutable pt_cycles : int64;
  mutable pt_bytes : int;
  mutable pt_samples : int;
}

val phase_index : Sink.phase -> int
val phase_of_index : int -> Sink.phase
val n_phases : int

type op_agg = {
  op_name : string;
  mutable enters : int;
  mutable exits : int;
  mutable threads : int;
  op_latency : hist;
  op_phases : phase_total array;  (** indexed by {!phase_index} *)
  mutable op_synced_bytes : int;
  mutable op_swaps : int;
  mutable op_emulations : int;
  mutable op_denials : int;
}

type t = {
  ops : (string, op_agg) Hashtbl.t;
  matrix : (string * string, int) Hashtbl.t;
  all_latency : hist;
  totals : phase_total array;
  mutable switch_spans : int;   (** Enter + Exit + Thread spans *)
  mutable init_spans : int;
  mutable swap_events : int;
  mutable emulation_events : int;
  mutable denial_events : int;
  mutable svc_marks : int;
  mutable switch_cycles : int64;
  mutable init_cycles : int64;
  mutable synced_bytes : int;
}

val create : unit -> t
val add : t -> Sink.event -> unit
val of_events : Sink.event list -> t

(** Total telemetry events consumed (spans + swaps + emulations +
    denials + SVC marks). *)
val event_count : t -> int

(** Cycles spent in monitor spans of any kind (switches + init). *)
val monitor_cycles : t -> int64

val phase_cycles : t -> Sink.phase -> int64
val phase_bytes : t -> Sink.phase -> int

(** Operations sorted by total switch cycles spent on their behalf,
    descending (ties by name). *)
val ops_by_cost : t -> op_agg list

(** [(src, dst, count)] rows of the switch matrix, sorted. *)
val matrix_rows : t -> (string * string * int) list
