(* Telemetry exporters: human text, machine JSON, and Chrome
   trace-event JSON (loadable in Perfetto / chrome://tracing).

   JSON is hand-rolled on a [Buffer] — the project deliberately carries
   no JSON dependency — and emitted deterministically so exports diff
   cleanly across runs. *)

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let jstr b s =
  Buffer.add_char b '"';
  escape b s;
  Buffer.add_char b '"'

(* ---- human text ---- *)

let opname = function "" -> "-" | s -> s

let text ?(events = false) (evs : Sink.event list) : string =
  let a = Agg.of_events evs in
  let b = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "switch spans     %d (enter/exit/thread)\n" a.Agg.switch_spans;
  pf "init spans       %d\n" a.Agg.init_spans;
  pf "switch cycles    %Ld (+ %Ld init)\n" a.Agg.switch_cycles
    a.Agg.init_cycles;
  pf "region swaps     %d\n" a.Agg.swap_events;
  pf "ppb emulations   %d\n" a.Agg.emulation_events;
  pf "denials          %d\n" a.Agg.denial_events;
  pf "svc marks        %d\n" a.Agg.svc_marks;
  pf "synced bytes     %d\n" a.Agg.synced_bytes;
  pf "\nphase breakdown (all spans incl. init):\n";
  List.iter
    (fun p ->
      let i = Agg.phase_index p in
      let c = a.Agg.totals.(i) in
      pf "  %-10s %10Ld cycles %10d bytes %6d legs\n" (Sink.phase_name p)
        c.Agg.pt_cycles c.Agg.pt_bytes c.Agg.pt_samples)
    Sink.phases;
  let ops = Agg.ops_by_cost a in
  if ops <> [] then begin
    pf "\nper operation:\n";
    pf "  %-20s %6s %6s %6s %10s %9s %10s %5s %5s %5s\n" "operation" "enter"
      "exit" "thr" "cycles" "mean" "bytes" "swap" "emu" "deny";
    List.iter
      (fun (o : Agg.op_agg) ->
        pf "  %-20s %6d %6d %6d %10Ld %9.1f %10d %5d %5d %5d\n" o.Agg.op_name
          o.Agg.enters o.Agg.exits o.Agg.threads o.Agg.op_latency.Agg.total
          (Agg.hist_mean o.Agg.op_latency)
          o.Agg.op_synced_bytes o.Agg.op_swaps o.Agg.op_emulations
          o.Agg.op_denials)
      ops
  end;
  let rows = Agg.matrix_rows a in
  if rows <> [] then begin
    pf "\nswitch matrix (src -> dst):\n";
    List.iter
      (fun (src, dst, n) ->
        pf "  %-20s -> %-20s %6d\n" (opname src) (opname dst) n)
      rows
  end;
  if a.Agg.all_latency.Agg.samples > 0 then begin
    pf "\nswitch latency (cycles, log2 buckets):\n";
    Array.iteri
      (fun i n ->
        if n > 0 then pf "  [%7d..%7d] %6d\n" (1 lsl i) ((1 lsl (i + 1)) - 1) n)
      a.Agg.all_latency.Agg.buckets;
    pf "  min %Ld  mean %.1f  max %Ld\n" a.Agg.all_latency.Agg.min
      (Agg.hist_mean a.Agg.all_latency)
      a.Agg.all_latency.Agg.max
  end;
  if events then begin
    pf "\nevents:\n";
    List.iter (fun e -> pf "  %s\n" (Fmt.str "%a" Sink.pp_event e)) evs
  end;
  Buffer.contents b

(* ---- machine JSON ---- *)

let json_phase_sample b (p : Sink.phase_sample) =
  Buffer.add_string b "{\"phase\":";
  jstr b (Sink.phase_name p.Sink.ph);
  Buffer.add_string b
    (Printf.sprintf ",\"start\":%Ld,\"end\":%Ld,\"bytes\":%d}" p.Sink.ph_start
       p.Sink.ph_end p.Sink.ph_bytes)

let json_info b (i : Sink.M.Fault.info) =
  Buffer.add_string b
    (Printf.sprintf "{\"addr\":%d,\"access\":\"%s\",\"privileged\":%b}"
       i.Sink.M.Fault.addr
       (match i.Sink.M.Fault.access with
       | Sink.M.Fault.Read -> "read"
       | Sink.M.Fault.Write -> "write"
       | Sink.M.Fault.Execute -> "execute")
       i.Sink.M.Fault.privileged)

let json_region b (r : Sink.region_id) =
  Buffer.add_string b
    (Printf.sprintf "{\"base\":%d,\"size_log2\":%d}" r.Sink.rg_base
       r.Sink.rg_size_log2)

let json_event b (e : Sink.event) =
  match e with
  | Sink.Switch s ->
    Buffer.add_string b "{\"type\":\"switch\",\"kind\":";
    jstr b (Sink.kind_name s.Sink.sp_kind);
    Buffer.add_string b ",\"src\":";
    jstr b s.Sink.sp_src;
    Buffer.add_string b ",\"dst\":";
    jstr b s.Sink.sp_dst;
    Buffer.add_string b
      (Printf.sprintf ",\"start\":%Ld,\"end\":%Ld,\"phases\":[" s.Sink.sp_start
         s.Sink.sp_end);
    List.iteri
      (fun i p ->
        if i > 0 then Buffer.add_char b ',';
        json_phase_sample b p)
      s.Sink.sp_phases;
    Buffer.add_string b "]}"
  | Sink.Region_swap r ->
    Buffer.add_string b "{\"type\":\"region_swap\",\"op\":";
    jstr b r.rs_op;
    Buffer.add_string b (Printf.sprintf ",\"slot\":%d,\"evicted\":" r.rs_slot);
    (match r.rs_evicted with
    | None -> Buffer.add_string b "null"
    | Some rid -> json_region b rid);
    Buffer.add_string b ",\"installed\":";
    json_region b r.rs_installed;
    Buffer.add_string b (Printf.sprintf ",\"at\":%Ld}" r.rs_at)
  | Sink.Emulation e ->
    Buffer.add_string b "{\"type\":\"emulation\",\"op\":";
    jstr b e.em_op;
    Buffer.add_string b
      (Printf.sprintf ",\"write\":%b,\"info\":" e.em_write);
    json_info b e.em_info;
    Buffer.add_string b (Printf.sprintf ",\"at\":%Ld}" e.em_at)
  | Sink.Denial d ->
    Buffer.add_string b "{\"type\":\"denial\",\"op\":";
    jstr b d.dn_op;
    Buffer.add_string b ",\"reason\":";
    jstr b d.dn_reason;
    Buffer.add_string b ",\"info\":";
    (match d.dn_info with
    | None -> Buffer.add_string b "null"
    | Some i -> json_info b i);
    Buffer.add_string b (Printf.sprintf ",\"at\":%Ld}" d.dn_at)
  | Sink.Svc_switch s ->
    Buffer.add_string b "{\"type\":\"svc_switch\",\"kind\":";
    jstr b (Sink.kind_name s.sv_kind);
    Buffer.add_string b ",\"entry\":";
    jstr b s.sv_entry;
    Buffer.add_string b (Printf.sprintf ",\"at\":%Ld}" s.sv_at)

let json (evs : Sink.event list) : string =
  let a = Agg.of_events evs in
  let b = Buffer.create 8192 in
  Buffer.add_string b "{\n  \"summary\": {";
  Buffer.add_string b
    (Printf.sprintf
       "\"switch_spans\": %d, \"init_spans\": %d, \"switch_cycles\": %Ld, \
        \"init_cycles\": %Ld, \"region_swaps\": %d, \"emulations\": %d, \
        \"denials\": %d, \"svc_marks\": %d, \"synced_bytes\": %d"
       a.Agg.switch_spans a.Agg.init_spans a.Agg.switch_cycles
       a.Agg.init_cycles a.Agg.swap_events a.Agg.emulation_events
       a.Agg.denial_events a.Agg.svc_marks a.Agg.synced_bytes);
  Buffer.add_string b "},\n  \"phases\": {";
  List.iteri
    (fun i p ->
      if i > 0 then Buffer.add_string b ", ";
      let c = a.Agg.totals.(Agg.phase_index p) in
      jstr b (Sink.phase_name p);
      Buffer.add_string b
        (Printf.sprintf ": {\"cycles\": %Ld, \"bytes\": %d, \"legs\": %d}"
           c.Agg.pt_cycles c.Agg.pt_bytes c.Agg.pt_samples))
    Sink.phases;
  Buffer.add_string b "},\n  \"operations\": [";
  List.iteri
    (fun i (o : Agg.op_agg) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "\n    {\"name\": ";
      jstr b o.Agg.op_name;
      Buffer.add_string b
        (Printf.sprintf
           ", \"enters\": %d, \"exits\": %d, \"threads\": %d, \"cycles\": \
            %Ld, \"mean_cycles\": %.1f, \"synced_bytes\": %d, \"swaps\": %d, \
            \"emulations\": %d, \"denials\": %d}"
           o.Agg.enters o.Agg.exits o.Agg.threads o.Agg.op_latency.Agg.total
           (Agg.hist_mean o.Agg.op_latency)
           o.Agg.op_synced_bytes o.Agg.op_swaps o.Agg.op_emulations
           o.Agg.op_denials))
    (Agg.ops_by_cost a);
  Buffer.add_string b "\n  ],\n  \"matrix\": [";
  List.iteri
    (fun i (src, dst, n) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "\n    {\"src\": ";
      jstr b src;
      Buffer.add_string b ", \"dst\": ";
      jstr b dst;
      Buffer.add_string b (Printf.sprintf ", \"count\": %d}" n))
    (Agg.matrix_rows a);
  Buffer.add_string b "\n  ],\n  \"events\": [";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "\n    ";
      json_event b e)
    evs;
  Buffer.add_string b "\n  ]\n}\n";
  Buffer.contents b

(* ---- Chrome trace-event JSON ---- *)

(* One tick = one cycle, reported through the microsecond [ts]/[dur]
   fields Perfetto expects; absolute durations read as if the core ran
   at 1 MHz, relative widths are exact. *)
let chrome (evs : Sink.event list) : string =
  let b = Buffer.create 8192 in
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_string b ",\n";
    Buffer.add_string b "    "
  in
  let complete ~name ~cat ~ts ~dur ~args =
    sep ();
    Buffer.add_string b "{\"name\": ";
    jstr b name;
    Buffer.add_string b ", \"cat\": ";
    jstr b cat;
    Buffer.add_string b
      (Printf.sprintf
         ", \"ph\": \"X\", \"ts\": %Ld, \"dur\": %Ld, \"pid\": 1, \"tid\": 1, \
          \"args\": {%s}}"
         ts dur args)
  in
  let instant ~name ~cat ~ts ~args =
    sep ();
    Buffer.add_string b "{\"name\": ";
    jstr b name;
    Buffer.add_string b ", \"cat\": ";
    jstr b cat;
    Buffer.add_string b
      (Printf.sprintf
         ", \"ph\": \"i\", \"ts\": %Ld, \"pid\": 1, \"tid\": 1, \"s\": \"t\", \
          \"args\": {%s}}"
         ts args)
  in
  let arg_str k v =
    let vb = Buffer.create 32 in
    jstr vb v;
    Printf.sprintf "\"%s\": %s" k (Buffer.contents vb)
  in
  List.iter
    (fun (e : Sink.event) ->
      match e with
      | Sink.Switch s ->
        let name =
          Printf.sprintf "%s %s->%s"
            (Sink.kind_name s.Sink.sp_kind)
            (opname s.Sink.sp_src) (opname s.Sink.sp_dst)
        in
        complete ~name ~cat:"switch" ~ts:s.Sink.sp_start
          ~dur:(Sink.span_cycles s)
          ~args:
            (String.concat ", "
               [
                 arg_str "kind" (Sink.kind_name s.Sink.sp_kind);
                 arg_str "src" s.Sink.sp_src;
                 arg_str "dst" s.Sink.sp_dst;
               ]);
        (* phase legs nest inside the span on the same track *)
        List.iter
          (fun (p : Sink.phase_sample) ->
            complete
              ~name:(Sink.phase_name p.Sink.ph)
              ~cat:"phase" ~ts:p.Sink.ph_start
              ~dur:(Int64.sub p.Sink.ph_end p.Sink.ph_start)
              ~args:(Printf.sprintf "\"bytes\": %d" p.Sink.ph_bytes))
          s.Sink.sp_phases
      | Sink.Region_swap r ->
        instant
          ~name:(Printf.sprintf "swap slot %d" r.rs_slot)
          ~cat:"region-swap" ~ts:r.rs_at
          ~args:
            (String.concat ", "
               [
                 arg_str "op" r.rs_op;
                 Printf.sprintf "\"installed_base\": %d"
                   r.rs_installed.Sink.rg_base;
               ])
      | Sink.Emulation e ->
        instant
          ~name:(if e.em_write then "ppb store" else "ppb load")
          ~cat:"emulation" ~ts:e.em_at
          ~args:
            (String.concat ", "
               [
                 arg_str "op" e.em_op;
                 Printf.sprintf "\"addr\": %d" e.em_info.Sink.M.Fault.addr;
               ])
      | Sink.Denial d ->
        instant ~name:"denial" ~cat:"denial" ~ts:d.dn_at
          ~args:
            (String.concat ", "
               [ arg_str "op" d.dn_op; arg_str "reason" d.dn_reason ])
      | Sink.Svc_switch s ->
        instant
          ~name:(Printf.sprintf "svc %s" (Sink.kind_name s.sv_kind))
          ~cat:"svc" ~ts:s.sv_at
          ~args:(arg_str "entry" s.sv_entry))
    evs;
  Printf.sprintf
    "{\n\
    \  \"displayTimeUnit\": \"ns\",\n\
    \  \"traceEvents\": [\n\
     %s\n\
    \  ]\n\
     }\n"
    (Buffer.contents b)

type format = Text | Json | Chrome

let format_of_string = function
  | "text" -> Some Text
  | "json" -> Some Json
  | "chrome" -> Some Chrome
  | _ -> None

let format_name = function Text -> "text" | Json -> "json" | Chrome -> "chrome"

let render fmt evs =
  match fmt with
  | Text -> text evs
  | Json -> json evs
  | Chrome -> chrome evs
