(** Structured, cycle-timestamped monitor telemetry (paper, Section 6.3).

    The monitor and interpreter emit {!event}s into a {!t}; emission
    sites guard on {!field-active} so the {!null} sink costs one flag
    test and allocates nothing.  Timestamps are {!Opec_machine.Cpu}
    cycle counts — recording charges no cycles, so instrumented runs are
    cycle-identical to plain ones. *)

module M = Opec_machine

(** One leg of the operation-switch protocol (Sections 5.2–5.3). *)
type phase =
  | Sanitize    (** developer-rule checks before shadows propagate *)
  | Sync        (** global synchronization through the public section *)
  | Relocate    (** stack-argument relocation / copy-back *)
  | Mpu_config  (** MPU plan installation *)

val phase_name : phase -> string

(** All phases, in protocol order. *)
val phases : phase list

(** A timed leg of one switch.  [ph_bytes] is the delta of the
    monitor's [synced_bytes] counter across the leg, so summing
    [ph_bytes] over every sample of every span reconciles exactly with
    [Stats.synced_bytes]. *)
type phase_sample = {
  ph : phase;
  ph_start : int64;
  ph_end : int64;
  ph_bytes : int;
}

type switch_kind =
  | Enter   (** operation entry (SVC trap in) *)
  | Exit    (** operation return (SVC trap out) *)
  | Thread  (** cooperative context switch (Section 7) *)
  | Init    (** one-time shadow fill + first MPU arm (Section 5.1) *)

val kind_name : switch_kind -> string

(** Does the kind count toward [Stats.switches]?  [Init] does not. *)
val kind_is_switch : switch_kind -> bool

(** One execution of the switch protocol.  [sp_src]/[sp_dst] are
    operation names; [""] means no operation on that side. *)
type span = {
  sp_kind : switch_kind;
  sp_src : string;
  sp_dst : string;
  sp_start : int64;
  sp_end : int64;
  sp_phases : phase_sample list;  (** in protocol order *)
}

val span_cycles : span -> int64

(** MPU region identity, for peripheral-rotation events. *)
type region_id = { rg_base : int; rg_size_log2 : int }

val region_id_of : M.Mpu.region -> region_id

type event =
  | Switch of span
  | Region_swap of {
      rs_op : string;
      rs_slot : int;                  (** MPU slot rotated *)
      rs_evicted : region_id option;  (** previous occupant, if any *)
      rs_installed : region_id;
      rs_at : int64;
    }
  | Emulation of {
      em_op : string;
      em_write : bool;
      em_info : M.Fault.info;
      em_at : int64;
    }
  | Denial of {
      dn_op : string;
      dn_reason : string;
      dn_info : M.Fault.info option;  (** present for fault-derived denials *)
      dn_at : int64;
    }
  | Svc_switch of {
      sv_kind : switch_kind;  (** [Enter] or [Exit] *)
      sv_entry : string;      (** the operation entry function *)
      sv_at : int64;
    }
      (** The interpreter's own record of a completed SVC switch — an
          independent stream [Interp.switches] is checked against. *)

type t = private {
  active : bool;
  emit : event -> unit;
}

(** The disabled sink: [active = false], emits nothing. *)
val null : t

val make : (event -> unit) -> t

(** An in-memory collecting sink. *)
module Memory : sig
  type buffer

  val create : unit -> buffer
  val sink : buffer -> t

  (** Events in emission order. *)
  val events : buffer -> event list

  val count : buffer -> int
  val clear : buffer -> unit
end

val pp_phase : Format.formatter -> phase -> unit
val pp_region_id : Format.formatter -> region_id -> unit
val pp_event : Format.formatter -> event -> unit
