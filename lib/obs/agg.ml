(* Per-operation aggregation over a telemetry stream: switch-latency
   histograms, a source->destination switch matrix, per-phase cycle and
   byte totals, and per-operation event counts (paper, Section 6.3). *)

(* Power-of-two latency buckets: bucket [i] counts spans whose cycle
   cost is in [2^i, 2^(i+1)).  32 buckets cover every span an [int]
   cycle counter can produce. *)
let hist_buckets = 32

type hist = {
  buckets : int array;
  mutable samples : int;
  mutable total : int64;
  mutable min : int64;
  mutable max : int64;
}

let hist_create () =
  {
    buckets = Array.make hist_buckets 0;
    samples = 0;
    total = 0L;
    min = Int64.max_int;
    max = 0L;
  }

let bucket_of cycles =
  let c = Int64.to_int cycles in
  if c <= 1 then 0
  else
    let rec floor_log2 i v = if v <= 1 then i else floor_log2 (i + 1) (v lsr 1) in
    min (hist_buckets - 1) (floor_log2 0 c)

let hist_add h cycles =
  h.buckets.(bucket_of cycles) <- h.buckets.(bucket_of cycles) + 1;
  h.samples <- h.samples + 1;
  h.total <- Int64.add h.total cycles;
  if cycles < h.min then h.min <- cycles;
  if cycles > h.max then h.max <- cycles

let hist_mean h =
  if h.samples = 0 then 0.
  else Int64.to_float h.total /. float_of_int h.samples

(* Bounds of bucket [i]: [0,1] for bucket 0, [2^i, 2^(i+1)-1] above. *)
let bucket_bounds i =
  if i = 0 then (0L, 1L)
  else
    ( Int64.shift_left 1L i,
      Int64.sub (Int64.shift_left 1L (min 62 (i + 1))) 1L )

(* Quantile estimate from the power-of-two buckets: find the bucket
   holding the q-th sample and interpolate linearly inside it.  The
   observed extremes stand in for the first and last occupied buckets'
   theoretical bounds, so interpolation never invents a value outside
   [min, max] — and p0/p100 are exactly the extremes, not estimates. *)
let hist_percentile h q =
  if h.samples = 0 then 0L
  else if q <= 0. then h.min
  else if q >= 1. then h.max
  else if h.samples = 1 then h.min (* min = max = the one sample *)
  else begin
    let rank = Float.max 1. (Float.of_int h.samples *. q) in
    let rec locate i seen =
      if i >= hist_buckets then hist_buckets - 1
      else
        let seen' = seen + h.buckets.(i) in
        if Float.of_int seen' >= rank then i else locate (i + 1) seen'
    in
    let rec seen_before i acc k =
      if k >= i then acc else seen_before i (acc + h.buckets.(k)) (k + 1)
    in
    let rec first_occupied i =
      if i >= hist_buckets - 1 || h.buckets.(i) > 0 then i
      else first_occupied (i + 1)
    in
    let rec last_occupied i =
      if i <= 0 || h.buckets.(i) > 0 then i else last_occupied (i - 1)
    in
    let b = locate 0 0 in
    let lo, hi = bucket_bounds b in
    (* the observed extremes live in the outermost occupied buckets, so
       they are tighter (and always correct) endpoints *)
    let lo = if b = first_occupied 0 then h.min else lo in
    let hi = if b = last_occupied (hist_buckets - 1) then h.max else hi in
    let inside = h.buckets.(b) in
    let frac =
      if inside = 0 then 0.
      else (rank -. Float.of_int (seen_before b 0 0)) /. Float.of_int inside
    in
    let v =
      Int64.add lo
        (Int64.of_float (frac *. Int64.to_float (Int64.sub hi lo)))
    in
    let v = if v < h.min then h.min else v in
    if v > h.max then h.max else v
  end

(* Per-phase running totals, one cell per [Sink.phase]. *)
type phase_total = {
  mutable pt_cycles : int64;
  mutable pt_bytes : int;
  mutable pt_samples : int;
}

let phase_index = function
  | Sink.Sanitize -> 0
  | Sink.Sync -> 1
  | Sink.Relocate -> 2
  | Sink.Mpu_config -> 3

let phase_of_index = function
  | 0 -> Sink.Sanitize
  | 1 -> Sink.Sync
  | 2 -> Sink.Relocate
  | _ -> Sink.Mpu_config

let n_phases = 4

type op_agg = {
  op_name : string;
  mutable enters : int;
  mutable exits : int;
  mutable threads : int;
  op_latency : hist;            (* Enter/Exit/Thread spans landing here *)
  op_phases : phase_total array;
  mutable op_synced_bytes : int;
  mutable op_swaps : int;
  mutable op_emulations : int;
  mutable op_denials : int;
}

type t = {
  ops : (string, op_agg) Hashtbl.t;
  matrix : (string * string, int) Hashtbl.t;  (* src -> dst switch counts *)
  all_latency : hist;           (* every counted switch span *)
  totals : phase_total array;   (* across all operations, incl. Init *)
  mutable switch_spans : int;   (* Enter + Exit + Thread spans *)
  mutable init_spans : int;
  mutable swap_events : int;
  mutable emulation_events : int;
  mutable denial_events : int;
  mutable svc_marks : int;
  mutable switch_cycles : int64;  (* total cycles inside counted spans *)
  mutable init_cycles : int64;
  mutable synced_bytes : int;
}

let create () =
  {
    ops = Hashtbl.create 17;
    matrix = Hashtbl.create 17;
    all_latency = hist_create ();
    totals = Array.init n_phases (fun _ -> { pt_cycles = 0L; pt_bytes = 0; pt_samples = 0 });
    switch_spans = 0;
    init_spans = 0;
    swap_events = 0;
    emulation_events = 0;
    denial_events = 0;
    svc_marks = 0;
    switch_cycles = 0L;
    init_cycles = 0L;
    synced_bytes = 0;
  }

let op t name =
  match Hashtbl.find_opt t.ops name with
  | Some o -> o
  | None ->
    let o =
      {
        op_name = name;
        enters = 0;
        exits = 0;
        threads = 0;
        op_latency = hist_create ();
        op_phases =
          Array.init n_phases (fun _ ->
              { pt_cycles = 0L; pt_bytes = 0; pt_samples = 0 });
        op_synced_bytes = 0;
        op_swaps = 0;
        op_emulations = 0;
        op_denials = 0;
      }
    in
    Hashtbl.add t.ops name o;
    o

(* The operation a span's cost is attributed to: the one being switched
   to on enter/thread, the one being left on exit. *)
let span_owner (s : Sink.span) =
  match s.Sink.sp_kind with
  | Sink.Enter | Sink.Thread | Sink.Init -> s.Sink.sp_dst
  | Sink.Exit -> s.Sink.sp_src

let add_phase_sample t o (p : Sink.phase_sample) =
  let i = phase_index p.Sink.ph in
  let cycles = Int64.sub p.Sink.ph_end p.Sink.ph_start in
  let cell = t.totals.(i) in
  cell.pt_cycles <- Int64.add cell.pt_cycles cycles;
  cell.pt_bytes <- cell.pt_bytes + p.Sink.ph_bytes;
  cell.pt_samples <- cell.pt_samples + 1;
  t.synced_bytes <- t.synced_bytes + p.Sink.ph_bytes;
  match o with
  | None -> ()
  | Some o ->
    let cell = o.op_phases.(i) in
    cell.pt_cycles <- Int64.add cell.pt_cycles cycles;
    cell.pt_bytes <- cell.pt_bytes + p.Sink.ph_bytes;
    cell.pt_samples <- cell.pt_samples + 1;
    o.op_synced_bytes <- o.op_synced_bytes + p.Sink.ph_bytes

let add t (e : Sink.event) =
  match e with
  | Sink.Switch s ->
    let owner_name = span_owner s in
    let o = if owner_name = "" then None else Some (op t owner_name) in
    let cycles = Sink.span_cycles s in
    (match s.Sink.sp_kind with
    | Sink.Init ->
      t.init_spans <- t.init_spans + 1;
      t.init_cycles <- Int64.add t.init_cycles cycles
    | Sink.Enter | Sink.Exit | Sink.Thread ->
      t.switch_spans <- t.switch_spans + 1;
      t.switch_cycles <- Int64.add t.switch_cycles cycles;
      hist_add t.all_latency cycles;
      let key = (s.Sink.sp_src, s.Sink.sp_dst) in
      Hashtbl.replace t.matrix key
        (1 + Option.value ~default:0 (Hashtbl.find_opt t.matrix key));
      (match o with
      | None -> ()
      | Some o ->
        hist_add o.op_latency cycles;
        (match s.Sink.sp_kind with
        | Sink.Enter -> o.enters <- o.enters + 1
        | Sink.Exit -> o.exits <- o.exits + 1
        | Sink.Thread -> o.threads <- o.threads + 1
        | Sink.Init -> ())));
    List.iter (add_phase_sample t o) s.Sink.sp_phases
  | Sink.Region_swap r ->
    t.swap_events <- t.swap_events + 1;
    if r.rs_op <> "" then (
      let o = op t r.rs_op in
      o.op_swaps <- o.op_swaps + 1)
  | Sink.Emulation e ->
    t.emulation_events <- t.emulation_events + 1;
    if e.em_op <> "" then (
      let o = op t e.em_op in
      o.op_emulations <- o.op_emulations + 1)
  | Sink.Denial d ->
    t.denial_events <- t.denial_events + 1;
    if d.dn_op <> "" then (
      let o = op t d.dn_op in
      o.op_denials <- o.op_denials + 1)
  | Sink.Svc_switch _ -> t.svc_marks <- t.svc_marks + 1

let of_events events =
  let t = create () in
  List.iter (add t) events;
  t

(* Every telemetry event the aggregate has consumed — the load suite's
   "events observed" half of its throughput accounting. *)
let event_count t =
  t.switch_spans + t.init_spans + t.swap_events + t.emulation_events
  + t.denial_events + t.svc_marks

(* Cycles the monitor spent in spans of any kind (switches + init). *)
let monitor_cycles t = Int64.add t.switch_cycles t.init_cycles

let phase_cycles t p = t.totals.(phase_index p).pt_cycles
let phase_bytes t p = t.totals.(phase_index p).pt_bytes

(* Ops sorted by total span cycles spent on their behalf, descending. *)
let ops_by_cost t =
  Hashtbl.fold (fun _ o acc -> o :: acc) t.ops []
  |> List.sort (fun a b ->
         match compare b.op_latency.total a.op_latency.total with
         | 0 -> compare a.op_name b.op_name
         | c -> c)

let matrix_rows t =
  Hashtbl.fold (fun (src, dst) n acc -> (src, dst, n) :: acc) t.matrix []
  |> List.sort compare
