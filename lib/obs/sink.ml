(* Structured, cycle-timestamped monitor telemetry (paper, Section 6.3).

   The monitor and the interpreter emit events into a sink; the null
   sink keeps the disabled path to a single flag test with no event
   allocation, so telemetry-off runs execute exactly the code they run
   today.  Timestamps are [Cpu.cycles] values: recording charges no
   cycles, so an instrumented run is cycle-identical to a plain one and
   every span duration is exact, not sampled. *)

module M = Opec_machine

(* One leg of the switch protocol (Sections 5.2–5.3). *)
type phase =
  | Sanitize    (** developer-rule checks before shadows propagate *)
  | Sync        (** global synchronization through the public section *)
  | Relocate    (** stack-argument relocation / copy-back *)
  | Mpu_config  (** MPU plan installation *)

let phase_name = function
  | Sanitize -> "sanitize"
  | Sync -> "sync"
  | Relocate -> "relocate"
  | Mpu_config -> "mpu-config"

let phases = [ Sanitize; Sync; Relocate; Mpu_config ]

(* A timed leg of one switch: start/end cycle stamps plus the bytes the
   monitor moved during it (the [synced_bytes] counter delta, so the sum
   over all samples of all spans reconciles exactly with [Stats]). *)
type phase_sample = {
  ph : phase;
  ph_start : int64;
  ph_end : int64;
  ph_bytes : int;
}

type switch_kind =
  | Enter   (** operation entry (SVC trap in) *)
  | Exit    (** operation return (SVC trap out) *)
  | Thread  (** cooperative context switch (Section 7) *)
  | Init    (** one-time shadow fill + first MPU arm (Section 5.1) *)

let kind_name = function
  | Enter -> "enter"
  | Exit -> "exit"
  | Thread -> "thread"
  | Init -> "init"

(* Counts as an operation switch for [Stats.switches] reconciliation?
   [Init] happens once, before the first switch, and is excluded. *)
let kind_is_switch = function
  | Enter | Exit | Thread -> true
  | Init -> false

(* One execution of the switch protocol.  [sp_src]/[sp_dst] are
   operation names; [""] means no operation on that side (the very
   first entry, or an exit that unwinds the last frame). *)
type span = {
  sp_kind : switch_kind;
  sp_src : string;
  sp_dst : string;
  sp_start : int64;
  sp_end : int64;
  sp_phases : phase_sample list;  (** in protocol order *)
}

let span_cycles s = Int64.sub s.sp_end s.sp_start

(* MPU region identity, for rotation events. *)
type region_id = { rg_base : int; rg_size_log2 : int }

let region_id_of (r : M.Mpu.region) =
  { rg_base = r.M.Mpu.base; rg_size_log2 = r.M.Mpu.size_log2 }

type event =
  | Switch of span
  | Region_swap of {
      rs_op : string;
      rs_slot : int;                    (** MPU slot rotated *)
      rs_evicted : region_id option;    (** previous occupant, if any *)
      rs_installed : region_id;
      rs_at : int64;
    }
  | Emulation of {
      em_op : string;
      em_write : bool;
      em_info : M.Fault.info;
      em_at : int64;
    }
  | Denial of {
      dn_op : string;
      dn_reason : string;
      dn_info : M.Fault.info option;  (** present for fault-derived denials *)
      dn_at : int64;
    }
  | Svc_switch of {
      (* the interpreter's own record of a completed switch trap — the
         independent stream [Interp.switches] is checked against *)
      sv_kind : switch_kind;  (** [Enter] or [Exit] *)
      sv_entry : string;      (** the operation entry function *)
      sv_at : int64;
    }

(* The sink proper.  Immutable on purpose: the shared [null] value must
   never become active behind an emitter's back. *)
type t = {
  active : bool;
  emit : event -> unit;
}

let null = { active = false; emit = ignore }
let make emit = { active = true; emit }

(* An in-memory collecting sink — the pipeline's and the tests' buffer. *)
module Memory = struct
  type buffer = { mutable rev_events : event list; mutable count : int }

  let create () = { rev_events = []; count = 0 }

  let sink b =
    make (fun e ->
        b.rev_events <- e :: b.rev_events;
        b.count <- b.count + 1)

  let events b = List.rev b.rev_events
  let count b = b.count
  let clear b =
    b.rev_events <- [];
    b.count <- 0
end

let pp_phase fmt p = Format.pp_print_string fmt (phase_name p)

let pp_region_id fmt r =
  Fmt.pf fmt "0x%08X+%dB" r.rg_base (1 lsl r.rg_size_log2)

let pp_event fmt = function
  | Switch s ->
    Fmt.pf fmt "@[switch[%s] %s -> %s @@%Ld (%Ld cycles%a)@]"
      (kind_name s.sp_kind)
      (if s.sp_src = "" then "-" else s.sp_src)
      (if s.sp_dst = "" then "-" else s.sp_dst)
      s.sp_start (span_cycles s)
      (fun fmt phs ->
        List.iter
          (fun p ->
            Fmt.pf fmt "; %s=%Ldc/%dB" (phase_name p.ph)
              (Int64.sub p.ph_end p.ph_start) p.ph_bytes)
          phs)
      s.sp_phases
  | Region_swap r ->
    Fmt.pf fmt "swap[%s] slot %d %a -> %a @@%Ld" r.rs_op r.rs_slot
      (Fmt.option ~none:(Fmt.any "empty") pp_region_id)
      r.rs_evicted pp_region_id r.rs_installed r.rs_at
  | Emulation e ->
    Fmt.pf fmt "emulate[%s] %s %a @@%Ld" e.em_op
      (if e.em_write then "store" else "load")
      M.Fault.pp_info e.em_info e.em_at
  | Denial d ->
    Fmt.pf fmt "deny[%s] %s @@%Ld" d.dn_op d.dn_reason d.dn_at
  | Svc_switch s ->
    Fmt.pf fmt "svc[%s] %s @@%Ld" (kind_name s.sv_kind) s.sv_entry s.sv_at
