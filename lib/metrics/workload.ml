(* Measurements of a workload as the vanilla baseline and under OPEC.

   This module is a thin view over the compile-once artifact pipeline
   ({!Opec_pipeline.Pipeline}): compiling and running are memoized per
   workload per process, so a full evaluation sweep derives each
   artifact exactly once no matter how many tables and figures consume
   it.  The [*_fresh] variants bypass the store and recompute from
   scratch — they exist for micro-benchmarks, whose whole point is to
   time the uncached work. *)

module M = Opec_machine
module C = Opec_core
module E = Opec_exec
module Mon = Opec_monitor
module Apps = Opec_apps
module P = Opec_pipeline.Pipeline

type baseline_result = {
  b_cycles : int64;
  b_trace : E.Trace.event list;
  b_check : (unit, string) result;
  b_flash : int;
  b_sram : int;
}

(* The plain baseline stage records no [Access] events, so its stream
   is already the function-granularity view and can be shared without
   copying (it may be millions of events long). *)
let view_baseline (b : P.baseline) =
  { b_cycles = b.P.b_cycles;
    b_trace = b.P.b_events;
    b_check = b.P.b_check;
    b_flash = b.P.b_flash;
    b_sram = b.P.b_sram }

let run_baseline (app : Apps.App.t) =
  let b = P.baseline (P.ctx app) in
  P.reraise b.P.b_err;
  view_baseline b

let run_baseline_fresh (app : Apps.App.t) =
  let world = app.Apps.App.make_world () in
  world.Apps.App.prepare ();
  let r =
    Mon.Runner.run_baseline ~devices:world.Apps.App.devices
      ~engine:(P.current_engine ()) ~board:app.Apps.App.board
      app.Apps.App.program
  in
  { b_cycles = E.Interp.cycles r.Mon.Runner.b_interp;
    b_trace = E.Trace.events (E.Interp.trace r.Mon.Runner.b_interp);
    b_check = world.Apps.App.check ();
    b_flash = r.Mon.Runner.b_layout.E.Vanilla_layout.flash_used;
    b_sram = r.Mon.Runner.b_layout.E.Vanilla_layout.sram_used }

type protected_result = {
  p_cycles : int64;
  p_check : (unit, string) result;
  p_stats : Mon.Stats.t;
  p_image : C.Image.t;
}

let compile (app : Apps.App.t) = P.image (P.ctx app)

let compile_fresh (app : Apps.App.t) =
  C.Compiler.compile ~board:app.Apps.App.board app.Apps.App.program
    app.Apps.App.dev_input

let run_protected_fresh ?image (app : Apps.App.t) =
  let image = match image with Some i -> i | None -> compile app in
  let world = app.Apps.App.make_world () in
  world.Apps.App.prepare ();
  let r =
    Mon.Runner.run_protected ~devices:world.Apps.App.devices
      ~engine:(P.current_engine ()) image
  in
  { p_cycles = E.Interp.cycles r.Mon.Runner.interp;
    p_check = world.Apps.App.check ();
    p_stats = Mon.Monitor.stats r.Mon.Runner.monitor;
    p_image = image }

let run_protected ?image (app : Apps.App.t) =
  let c = P.ctx app in
  (* a foreign image (one the store did not produce) cannot reuse the
     memoized run; fall back to a fresh one *)
  let cached = match image with None -> true | Some i -> i == P.image c in
  if cached then begin
    let p = P.protected_ c in
    P.reraise p.P.p_err;
    { p_cycles = p.P.p_cycles;
      p_check = p.P.p_check;
      p_stats = p.P.p_stats;
      p_image = P.image c }
  end
  else run_protected_fresh ?image app

(* task instances (entry, executed functions) from a baseline trace *)
let task_instances (app : Apps.App.t) (b : baseline_result) =
  E.Trace.tasks_of ~entries:(Apps.App.task_entries app) b.b_trace

let runtime_overhead_pct ~(baseline : baseline_result)
    ~(protected_ : protected_result) =
  let b = Int64.to_float baseline.b_cycles in
  let p = Int64.to_float protected_.p_cycles in
  if b = 0.0 then 0.0 else (p -. b) /. b *. 100.0
