(* Drive a workload once as the vanilla baseline and once under OPEC,
   collecting the measurements the evaluation consumes: the DWT-style
   cycle counts, the execution trace, and the monitor statistics. *)

module M = Opec_machine
module C = Opec_core
module E = Opec_exec
module Mon = Opec_monitor
module Apps = Opec_apps

type baseline_result = {
  b_cycles : int64;
  b_trace : E.Trace.event list;
  b_check : (unit, string) result;
  b_flash : int;
  b_sram : int;
}

let run_baseline (app : Apps.App.t) =
  let world = app.Apps.App.make_world () in
  world.Apps.App.prepare ();
  let r =
    Mon.Runner.run_baseline ~devices:world.Apps.App.devices
      ~board:app.Apps.App.board app.Apps.App.program
  in
  { b_cycles = E.Interp.cycles r.Mon.Runner.b_interp;
    b_trace = E.Trace.events (E.Interp.trace r.Mon.Runner.b_interp);
    b_check = world.Apps.App.check ();
    b_flash = r.Mon.Runner.b_layout.E.Vanilla_layout.flash_used;
    b_sram = r.Mon.Runner.b_layout.E.Vanilla_layout.sram_used }

type protected_result = {
  p_cycles : int64;
  p_check : (unit, string) result;
  p_stats : Mon.Stats.t;
  p_image : C.Image.t;
}

let compile (app : Apps.App.t) =
  C.Compiler.compile ~board:app.Apps.App.board app.Apps.App.program
    app.Apps.App.dev_input

let run_protected ?image (app : Apps.App.t) =
  let image = match image with Some i -> i | None -> compile app in
  let world = app.Apps.App.make_world () in
  world.Apps.App.prepare ();
  let r = Mon.Runner.run_protected ~devices:world.Apps.App.devices image in
  { p_cycles = E.Interp.cycles r.Mon.Runner.interp;
    p_check = world.Apps.App.check ();
    p_stats = (Mon.Monitor.stats r.Mon.Runner.monitor);
    p_image = image }

(* task instances (entry, executed functions) from a baseline trace *)
let task_instances (app : Apps.App.t) (b : baseline_result) =
  let t = { E.Trace.events = List.rev b.b_trace; enabled = false; mem = false } in
  E.Trace.tasks ~entries:(Apps.App.task_entries app) t

let runtime_overhead_pct ~(baseline : baseline_result)
    ~(protected_ : protected_result) =
  let b = Int64.to_float baseline.b_cycles in
  let p = Int64.to_float protected_.p_cycles in
  if b = 0.0 then 0.0 else (p -. b) /. b *. 100.0
