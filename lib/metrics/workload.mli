(** Drive a workload as the vanilla baseline and under OPEC, collecting
    the measurements the evaluation consumes.

    Backed by the compile-once artifact pipeline: [compile],
    [run_baseline], and [run_protected] are memoized per workload per
    process, so an evaluation sweep derives each artifact exactly once.
    The [*_fresh] variants recompute from scratch every call (for
    micro-benchmarks that time the uncached work). *)

type baseline_result = {
  b_cycles : int64;
  b_trace : Opec_exec.Trace.event list;
  b_check : (unit, string) result;
  b_flash : int;
  b_sram : int;
}

val run_baseline : Opec_apps.App.t -> baseline_result
val run_baseline_fresh : Opec_apps.App.t -> baseline_result

type protected_result = {
  p_cycles : int64;
  p_check : (unit, string) result;
  p_stats : Opec_monitor.Stats.t;
  p_image : Opec_core.Image.t;
}

(** Compile a workload with its developer inputs (memoized). *)
val compile : Opec_apps.App.t -> Opec_core.Image.t

(** Compile from scratch, bypassing the artifact store. *)
val compile_fresh : Opec_apps.App.t -> Opec_core.Image.t

(** Run protected; pass [image] to reuse a compiled image.  The run is
    memoized when [image] is the store's own image (or omitted). *)
val run_protected :
  ?image:Opec_core.Image.t -> Opec_apps.App.t -> protected_result

val run_protected_fresh :
  ?image:Opec_core.Image.t -> Opec_apps.App.t -> protected_result

(** Task instances (entry, executed functions) segmented from a baseline
    trace — the paper's GDB-based task profiling. *)
val task_instances :
  Opec_apps.App.t -> baseline_result -> (string * string list) list

(** Figure 9's runtime overhead: (protected - baseline) / baseline. *)
val runtime_overhead_pct :
  baseline:baseline_result -> protected_:protected_result -> float
