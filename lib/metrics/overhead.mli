(** Figure 9 (OPEC overhead) and Table 2 (comparison to ACES). *)

type fig9_row = {
  app : string;
  runtime_pct : float;
  flash_pct : float;  (** of device flash capacity *)
  sram_pct : float;   (** of device SRAM capacity *)
}

val fig9_average : fig9_row list -> fig9_row

(** Run one workload baseline + protected and derive its Figure 9 row. *)
val fig9_of_app : Opec_apps.App.t -> fig9_row

type t2_row = {
  t2_app : string;
  policy : string;  (** OPEC / ACES1 / ACES2 / ACES3 *)
  ro : float;       (** runtime ratio vs baseline (x) *)
  fo : float;       (** flash overhead, % of device flash *)
  so : float;       (** SRAM overhead, % of device SRAM *)
  pac : float;      (** privileged application code, % *)
}

val t2_opec :
  Opec_apps.App.t -> baseline:Workload.baseline_result ->
  protected_:Workload.protected_result -> t2_row

val t2_aces :
  Opec_apps.App.t -> Opec_aces.Strategy.kind ->
  baseline:Workload.baseline_result -> t2_row

(** The four policy rows of one application. *)
val table2_of_app : Opec_apps.App.t -> t2_row list

(** {2 Overhead breakdown (Section 6.3)} *)

(** Where the monitor's overhead cycles go for one workload, measured
    from the telemetry stream of the instrumented protected run.  The
    phase buckets include the one-time init span's legs; [bd_init]
    reports that span separately for reference.  [bd_other] is the part
    of the total overhead spent outside monitor spans (fault-handler
    entry, re-executed instructions after an MPU rotation retry, and the
    protected program's own extra work). *)
type breakdown = {
  bd_app : string;
  bd_base_cycles : int64;
  bd_prot_cycles : int64;
  bd_overhead_cycles : int64;  (** protected - baseline *)
  bd_sanitize : int64;
  bd_sync : int64;
  bd_relocate : int64;
  bd_mpu : int64;
      (** 0 in this model: MPU reconfiguration is a register write the
          machine charges no bus cycles for *)
  bd_init : int64;
  bd_svc : int64;    (** 4-cycle SVC pipeline cost per completed trap *)
  bd_other : int64;
  bd_switches : int;
  bd_swaps : int;
  bd_emulations : int;
  bd_synced_bytes : int;
}

val svc_trap_cycles : int64

(** Derive a breakdown from already-measured numbers. *)
val breakdown_of :
  app_name:string ->
  base_cycles:int64 ->
  prot_cycles:int64 ->
  Opec_obs.Agg.t ->
  breakdown

(** Run one workload baseline + instrumented-protected (both memoized)
    and derive its overhead breakdown.  [backend] selects the
    enforcement backend of the protected run (default MPU); the
    unprotected baseline is shared across backends. *)
val breakdown_of_app :
  ?backend:Opec_machine.Backend.kind -> Opec_apps.App.t -> breakdown
