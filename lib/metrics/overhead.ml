(* Figure 9 (runtime/flash/SRAM overhead of OPEC) and Table 2 (comparison
   of OPEC with the three ACES strategies). *)

module M = Opec_machine
module C = Opec_core
module A = Opec_aces

type fig9_row = {
  app : string;
  runtime_pct : float;
  flash_pct : float;
  sram_pct : float;
}

let fig9_average rows =
  let n = float_of_int (max 1 (List.length rows)) in
  let sum f = List.fold_left (fun acc r -> acc +. f r) 0.0 rows in
  { app = "Average";
    runtime_pct = sum (fun r -> r.runtime_pct) /. n;
    flash_pct = sum (fun r -> r.flash_pct) /. n;
    sram_pct = sum (fun r -> r.sram_pct) /. n }

let fig9_of_app (app : Opec_apps.App.t) =
  let baseline = Workload.run_baseline app in
  let protected_ = Workload.run_protected app in
  let image = protected_.Workload.p_image in
  { app = app.Opec_apps.App.app_name;
    runtime_pct = Workload.runtime_overhead_pct ~baseline ~protected_;
    flash_pct = C.Image.flash_overhead_pct image;
    sram_pct = C.Image.sram_overhead_pct image }

(* --- Table 2 rows -------------------------------------------------------- *)

type t2_row = {
  t2_app : string;
  policy : string;     (** OPEC / ACES-1 / ACES-2 / ACES-3 *)
  ro : float;          (** runtime ratio vs baseline (x) *)
  fo : float;          (** flash overhead %, of device flash *)
  so : float;          (** SRAM overhead %, of device SRAM *)
  pac : float;         (** privileged application code % *)
}

let t2_opec (app : Opec_apps.App.t) ~baseline ~(protected_ : Workload.protected_result) =
  let image = protected_.Workload.p_image in
  { t2_app = app.Opec_apps.App.app_name;
    policy = "OPEC";
    ro =
      Int64.to_float protected_.Workload.p_cycles
      /. Int64.to_float (max 1L baseline.Workload.b_cycles);
    fo = C.Image.flash_overhead_pct image;
    so = C.Image.sram_overhead_pct image;
    pac = 0.0 (* instruction emulation keeps all application code unprivileged *) }

let t2_aces (app : Opec_apps.App.t) kind ~(baseline : Workload.baseline_result) =
  let aces =
    Opec_pipeline.Pipeline.aces (Opec_pipeline.Pipeline.ctx app) kind
  in
  let switches = A.Aces.count_switches aces baseline.Workload.b_trace in
  let switch_cycles = switches * A.Aces.switch_cost_cycles in
  let board = app.Opec_apps.App.board in
  { t2_app = app.Opec_apps.App.app_name;
    policy = A.Strategy.name kind;
    ro =
      (Int64.to_float baseline.Workload.b_cycles +. float_of_int switch_cycles)
      /. Int64.to_float (max 1L baseline.Workload.b_cycles);
    fo =
      100.0
      *. float_of_int (A.Aces.flash_overhead_bytes aces)
      /. float_of_int board.M.Memmap.flash_size;
    so =
      100.0
      *. float_of_int (A.Aces.sram_overhead_bytes aces)
      /. float_of_int board.M.Memmap.sram_size;
    pac = A.Aces.privileged_app_code_pct aces }

let table2_of_app (app : Opec_apps.App.t) =
  let baseline = Workload.run_baseline app in
  let protected_ = Workload.run_protected app in
  t2_opec app ~baseline ~protected_
  :: List.map
       (fun kind -> t2_aces app kind ~baseline)
       [ A.Strategy.Filename; A.Strategy.Filename_no_opt;
         A.Strategy.By_peripheral ]
