(* Figure 9 (runtime/flash/SRAM overhead of OPEC) and Table 2 (comparison
   of OPEC with the three ACES strategies). *)

module M = Opec_machine
module C = Opec_core
module A = Opec_aces

type fig9_row = {
  app : string;
  runtime_pct : float;
  flash_pct : float;
  sram_pct : float;
}

let fig9_average rows =
  let n = float_of_int (max 1 (List.length rows)) in
  let sum f = List.fold_left (fun acc r -> acc +. f r) 0.0 rows in
  { app = "Average";
    runtime_pct = sum (fun r -> r.runtime_pct) /. n;
    flash_pct = sum (fun r -> r.flash_pct) /. n;
    sram_pct = sum (fun r -> r.sram_pct) /. n }

let fig9_of_app (app : Opec_apps.App.t) =
  let baseline = Workload.run_baseline app in
  let protected_ = Workload.run_protected app in
  let image = protected_.Workload.p_image in
  { app = app.Opec_apps.App.app_name;
    runtime_pct = Workload.runtime_overhead_pct ~baseline ~protected_;
    flash_pct = C.Image.flash_overhead_pct image;
    sram_pct = C.Image.sram_overhead_pct image }

(* --- Table 2 rows -------------------------------------------------------- *)

type t2_row = {
  t2_app : string;
  policy : string;     (** OPEC / ACES-1 / ACES-2 / ACES-3 *)
  ro : float;          (** runtime ratio vs baseline (x) *)
  fo : float;          (** flash overhead %, of device flash *)
  so : float;          (** SRAM overhead %, of device SRAM *)
  pac : float;         (** privileged application code % *)
}

let t2_opec (app : Opec_apps.App.t) ~baseline ~(protected_ : Workload.protected_result) =
  let image = protected_.Workload.p_image in
  { t2_app = app.Opec_apps.App.app_name;
    policy = "OPEC";
    ro =
      Int64.to_float protected_.Workload.p_cycles
      /. Int64.to_float (max 1L baseline.Workload.b_cycles);
    fo = C.Image.flash_overhead_pct image;
    so = C.Image.sram_overhead_pct image;
    pac = 0.0 (* instruction emulation keeps all application code unprivileged *) }

let t2_aces (app : Opec_apps.App.t) kind ~(baseline : Workload.baseline_result) =
  let aces =
    Opec_pipeline.Pipeline.aces (Opec_pipeline.Pipeline.ctx app) kind
  in
  let switches = A.Aces.count_switches aces baseline.Workload.b_trace in
  let switch_cycles = switches * A.Aces.switch_cost_cycles in
  let board = app.Opec_apps.App.board in
  { t2_app = app.Opec_apps.App.app_name;
    policy = A.Strategy.name kind;
    ro =
      (Int64.to_float baseline.Workload.b_cycles +. float_of_int switch_cycles)
      /. Int64.to_float (max 1L baseline.Workload.b_cycles);
    fo =
      100.0
      *. float_of_int (A.Aces.flash_overhead_bytes aces)
      /. float_of_int board.M.Memmap.flash_size;
    so =
      100.0
      *. float_of_int (A.Aces.sram_overhead_bytes aces)
      /. float_of_int board.M.Memmap.sram_size;
    pac = A.Aces.privileged_app_code_pct aces }

let table2_of_app (app : Opec_apps.App.t) =
  let baseline = Workload.run_baseline app in
  let protected_ = Workload.run_protected app in
  t2_opec app ~baseline ~protected_
  :: List.map
       (fun kind -> t2_aces app kind ~baseline)
       [ A.Strategy.Filename; A.Strategy.Filename_no_opt;
         A.Strategy.By_peripheral ]

(* --- overhead breakdown (Section 6.3) ------------------------------------ *)

module Obs = Opec_obs
module P = Opec_pipeline.Pipeline

(* Where the monitor's overhead cycles go, per workload, measured from
   the telemetry stream of the instrumented protected run.  The phase
   buckets come from the span samples; [bd_svc] is the SVC pipeline cost
   (4 cycles per completed trap); [bd_other] is the residual of the
   total overhead not inside any monitor span — fault-handling entry
   costs, re-executed instructions after a Retry, and the switched
   program's own extra work. *)
type breakdown = {
  bd_app : string;
  bd_base_cycles : int64;
  bd_prot_cycles : int64;
  bd_overhead_cycles : int64;  (** protected - baseline *)
  bd_sanitize : int64;
  bd_sync : int64;
  bd_relocate : int64;
  bd_mpu : int64;
      (** 0 in this model: [Mpu.set] is a register write the machine
          charges no bus cycles for *)
  bd_init : int64;   (** the one-time init span (shadow fill + first arm) *)
  bd_svc : int64;    (** 4-cycle SVC pipeline cost per completed trap *)
  bd_other : int64;  (** residual overhead outside monitor spans *)
  bd_switches : int;
  bd_swaps : int;
  bd_emulations : int;
  bd_synced_bytes : int;
}

let svc_trap_cycles = 4L

let breakdown_of ~app_name ~base_cycles ~prot_cycles
    (agg : Obs.Agg.t) =
  let overhead = Int64.sub prot_cycles base_cycles in
  let ph p = Obs.Agg.phase_cycles agg p in
  let sanitize = ph Obs.Sink.Sanitize in
  let sync = ph Obs.Sink.Sync in
  let relocate = ph Obs.Sink.Relocate in
  let mpu = ph Obs.Sink.Mpu_config in
  let init = agg.Obs.Agg.init_cycles in
  let svc = Int64.mul svc_trap_cycles (Int64.of_int agg.Obs.Agg.svc_marks) in
  let accounted =
    List.fold_left Int64.add 0L [ sanitize; sync; relocate; mpu; svc ]
  in
  (* init's phase legs are already inside sanitize/sync/..., so subtract
     the phase totals (which include init's samples) plus svc only *)
  { bd_app = app_name;
    bd_base_cycles = base_cycles;
    bd_prot_cycles = prot_cycles;
    bd_overhead_cycles = overhead;
    bd_sanitize = sanitize;
    bd_sync = sync;
    bd_relocate = relocate;
    bd_mpu = mpu;
    bd_init = init;
    bd_svc = svc;
    bd_other = Int64.sub overhead accounted;
    bd_switches = agg.Obs.Agg.switch_spans;
    bd_swaps = agg.Obs.Agg.swap_events;
    bd_emulations = agg.Obs.Agg.emulation_events;
    bd_synced_bytes = agg.Obs.Agg.synced_bytes }

(* Run one workload baseline + instrumented-protected (both memoized)
   and derive its overhead breakdown.  The baseline is unprotected and
   backend-independent, so every backend shares the default context's
   run; only the protected run is per-backend. *)
let breakdown_of_app ?backend (app : Opec_apps.App.t) =
  let c = P.ctx ?backend app in
  let baseline = Workload.run_baseline app in
  let o = P.protected_obs c in
  P.reraise o.P.o_err;
  breakdown_of ~app_name:app.Opec_apps.App.app_name
    ~base_cycles:baseline.Workload.b_cycles ~prot_cycles:o.P.o_cycles
    (Obs.Agg.of_events o.P.o_events)
