(* The opec command-line tool.

     opec list                      enumerate bundled workloads
     opec policy APP                print the operation policy file
     opec run APP [--baseline] [--engine E]     execute a workload on the machine model
     opec compare APP               baseline vs OPEC overhead for one app
     opec aces APP [-s STRATEGY]    show the ACES baseline's compartments
     opec trace APP [-n N]          operation-switch timeline of a run
     opec profile [APP]             per-stage pipeline timings
     opec syncsets [APP] [--json]   static sync-schedule report
     opec lint [APP] [--all] [--json]  verify the derived policy
     opec attack [APP] [--all] [--json]  run the attack-injection campaign
     opec compare-backends [APP] [--json]  MPU/PMP/CHERI/POE trade-off study
     opec fuzz [--seeds A..B] [--size N] [--property P] [--replay FILE]
               [--corpus DIR] [--budget N] [--json]
                                    property-based differential fuzzing
                                    (coverage-guided with --corpus)
     opec fleet [--apps ...] [--seeds A..B] [--tasks ...] [-j N]
                                    sharded fleet-scale evaluation
     opec load [SCENARIO] [--backend B] [--events N] [--json]
                                    traffic-driven switch-latency tails

   Every command draws its artifacts from the compile-once pipeline, so
   within one invocation each workload is compiled and run at most
   once no matter how many commands' worth of work an invocation does.
   Parallel commands (attack --all, fuzz, fleet) share one domain pool;
   [-j] sets its size for the invocation. *)

open Cmdliner
module M = Opec_machine
module C = Opec_core
module A = Opec_aces
module Mon = Opec_monitor
module Apps = Opec_apps
module Met = Opec_metrics
module P = Opec_pipeline.Pipeline

let find_app name =
  match Apps.Registry.find name (Apps.Registry.all ()) with
  | Some app -> Ok app
  | None ->
    Error
      (Printf.sprintf "unknown application %S; try `opec list'" name)

let app_arg =
  let doc = "Workload name (see `opec list')." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"APP" ~doc)

let exits_with_error msg =
  Format.eprintf "error: %s@." msg;
  exit 1

(* "A..B" inclusive seed ranges, shared by fuzz and fleet. *)
let seed_range_conv =
  let parse s =
    match String.index_opt s '.' with
    | Some i
      when i + 1 < String.length s
           && s.[i + 1] = '.'
           && i + 2 <= String.length s -> (
      let lo = String.sub s 0 i
      and hi = String.sub s (i + 2) (String.length s - i - 2) in
      match (int_of_string_opt lo, int_of_string_opt hi) with
      | Some lo, Some hi when lo <= hi -> Ok (lo, hi)
      | _ -> Error (`Msg (Printf.sprintf "bad seed range %S" s)))
    | _ -> Error (`Msg (Printf.sprintf "bad seed range %S (want A..B)" s))
  in
  let print f (lo, hi) = Format.fprintf f "%d..%d" lo hi in
  Arg.conv (parse, print)

(* Interpreter-engine selection, shared by run and compare: all three
   engines are observationally identical (the engine-differential
   oracle holds them to it), so this only trades translation time
   against run throughput. *)
let engine_conv =
  let parse s =
    match String.lowercase_ascii (String.trim s) with
    | "tree" -> Ok Opec_exec.Interp.Tree
    | "decoded" -> Ok Opec_exec.Interp.Decoded
    | "compiled" -> Ok Opec_exec.Interp.Compiled
    | _ ->
      Error
        (`Msg
          (Printf.sprintf "unknown engine %S (tree, decoded, compiled)" s))
  in
  let print f e =
    Format.pp_print_string f
      (match e with
      | Opec_exec.Interp.Tree -> "tree"
      | Opec_exec.Interp.Decoded -> "decoded"
      | Opec_exec.Interp.Compiled -> "compiled")
  in
  Arg.conv (parse, print)

let engine_arg =
  Arg.(
    value
    & opt engine_conv Opec_exec.Interp.Compiled
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Interpreter engine: $(b,compiled) (closure-compiled, the \
           default), $(b,decoded) (decode-once), or $(b,tree) (the \
           reference tree walker).  All three are bit-identical in \
           every observable; they differ only in speed.")

(* Enforcement-backend selection, shared by run/trace/attack and the
   cross-backend study. *)
let backend_conv =
  let parse s =
    match M.Backend.kind_of_name (String.lowercase_ascii (String.trim s)) with
    | Some k -> Ok k
    | None ->
      Error
        (`Msg
           (Printf.sprintf "unknown enforcement backend %S (known: %s)" s
              (String.concat ", "
                 (List.map M.Backend.kind_name M.Backend.all_kinds))))
  in
  let print fmt k = Format.pp_print_string fmt (M.Backend.kind_name k) in
  Arg.conv (parse, print)

let backend_arg =
  Arg.(
    value
    & opt backend_conv M.Backend.Mpu
    & info [ "backend" ] ~docv:"B"
        ~doc:
          "Enforcement backend the protected run uses: $(b,mpu) \
           (default), $(b,pmp), $(b,cheri), or $(b,poe).")

(* ------------------------------------------------------------------ list *)

let list_cmd =
  let run () =
    List.iter
      (fun (app : Apps.App.t) ->
        Format.printf "%-10s (%s, %d functions, %d globals)@."
          app.Apps.App.app_name
          app.Apps.App.board.M.Memmap.board_name
          (List.length app.Apps.App.program.Opec_ir.Program.funcs)
          (List.length app.Apps.App.program.Opec_ir.Program.globals))
      (Apps.Registry.all ())
  in
  Cmd.v (Cmd.info "list" ~doc:"List the bundled workloads")
    Term.(const run $ const ())

(* ---------------------------------------------------------------- policy *)

let policy_cmd =
  let run name =
    match find_app name with
    | Error e -> exits_with_error e
    | Ok app ->
      let image = Met.Workload.compile app in
      print_endline (C.Compiler.policy image)
  in
  Cmd.v
    (Cmd.info "policy"
       ~doc:"Partition a workload and print its operation policy file")
    Term.(const run $ app_arg)

(* ------------------------------------------------------------------- run *)

let run_cmd =
  let baseline =
    Arg.(value & flag & info [ "baseline" ] ~doc:"Run the unprotected baseline binary.")
  in
  let run name baseline_only engine =
    P.set_engine engine;
    match find_app name with
    | Error e -> exits_with_error e
    | Ok app ->
      if baseline_only then begin
        let b = Met.Workload.run_baseline app in
        Format.printf "cycles: %Ld@." b.Met.Workload.b_cycles;
        match b.Met.Workload.b_check with
        | Ok () -> Format.printf "world check: OK@."
        | Error e -> exits_with_error ("world check failed: " ^ e)
      end
      else begin
        let p = Met.Workload.run_protected app in
        Format.printf "cycles: %Ld@." p.Met.Workload.p_cycles;
        Format.printf "monitor: %a@." Mon.Stats.pp p.Met.Workload.p_stats;
        match p.Met.Workload.p_check with
        | Ok () -> Format.printf "world check: OK@."
        | Error e -> exits_with_error ("world check failed: " ^ e)
      end
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Execute a workload on the machine model")
    Term.(const run $ app_arg $ baseline $ engine_arg)

(* --------------------------------------------------------------- compare *)

let compare_cmd =
  let run name engine =
    P.set_engine engine;
    match find_app name with
    | Error e -> exits_with_error e
    | Ok app ->
      let baseline = Met.Workload.run_baseline app in
      let protected_ = Met.Workload.run_protected app in
      let image = protected_.Met.Workload.p_image in
      Format.printf "baseline cycles:  %Ld@." baseline.Met.Workload.b_cycles;
      Format.printf "protected cycles: %Ld@." protected_.Met.Workload.p_cycles;
      Format.printf "runtime overhead: %.2f%%@."
        (Met.Workload.runtime_overhead_pct ~baseline ~protected_);
      Format.printf "flash overhead:   %.2f%% of device flash@."
        (C.Image.flash_overhead_pct image);
      Format.printf "SRAM overhead:    %.2f%% of device SRAM@."
        (C.Image.sram_overhead_pct image)
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Baseline vs OPEC overhead for one workload")
    Term.(const run $ app_arg $ engine_arg)

(* ------------------------------------------------------------------ aces *)

let strategy_conv =
  let parse = function
    | "1" | "filename" -> Ok A.Strategy.Filename
    | "2" | "filename-no-opt" -> Ok A.Strategy.Filename_no_opt
    | "3" | "peripheral" -> Ok A.Strategy.By_peripheral
    | s -> Error (`Msg (Printf.sprintf "unknown strategy %S" s))
  in
  let print fmt k = Format.pp_print_string fmt (A.Strategy.name k) in
  Arg.conv (parse, print)

let aces_cmd =
  let strategy =
    Arg.(
      value
      & opt strategy_conv A.Strategy.Filename
      & info [ "s"; "strategy" ] ~docv:"STRATEGY"
          ~doc:"ACES strategy: filename (1), filename-no-opt (2), peripheral (3).")
  in
  let run name kind =
    match find_app name with
    | Error e -> exits_with_error e
    | Ok app ->
      let aces = A.Aces.analyze kind app.Apps.App.program in
      Format.printf "%a@." A.Aces.pp aces;
      let samples = Met.Overprivilege.aces_pt aces in
      List.iter
        (fun (s : Met.Overprivilege.pt_sample) ->
          if s.Met.Overprivilege.pt > 0.0 then
            Format.printf "PT %-40s %.3f@." s.Met.Overprivilege.domain
              s.Met.Overprivilege.pt)
        samples
  in
  Cmd.v
    (Cmd.info "aces" ~doc:"Show the ACES baseline's compartments for a workload")
    Term.(const run $ app_arg $ strategy)

(* ----------------------------------------------------------------- trace *)

let trace_cmd =
  let module Obs = Opec_obs in
  let app_opt =
    let doc = "Workload to trace (default: every bundled workload)." in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"APP" ~doc)
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Write the export to FILE instead of stdout (single workload only).")
  in
  let format =
    Arg.(
      value
      & opt
          (enum
             [ ("text", Obs.Export.Text); ("json", Obs.Export.Json);
               ("chrome", Obs.Export.Chrome) ])
          Obs.Export.Text
      & info [ "format" ] ~docv:"FMT"
          ~doc:
            "Export format: text (human summary), json (machine), or \
             chrome (trace-event JSON loadable in Perfetto / \
             chrome://tracing).")
  in
  let limit =
    Arg.(
      value & opt int 40
      & info [ "n"; "limit" ] ~docv:"N"
          ~doc:"Telemetry events to list in text format (default 40).")
  in
  let trace_app backend fmt limit out (app : Apps.App.t) =
    let c = P.ctx ~backend app in
    let o = P.protected_obs c in
    P.reraise o.P.o_err;
    let events = o.P.o_events in
    match fmt with
    | Obs.Export.Text ->
      let emit line = Format.printf "%s" line in
      emit (Printf.sprintf "== %s ==\n" app.Apps.App.app_name);
      emit
        (Fmt.str "monitor: %a\nsvc transitions (interp): %d\n@?" Mon.Stats.pp
           o.P.o_stats o.P.o_switches);
      emit (Obs.Export.text events);
      let n = List.length events in
      Format.printf "@.first %d of %d events:@." (min limit n) n;
      List.iteri
        (fun i e ->
          if i < limit then Format.printf "  %a@." Obs.Sink.pp_event e)
        events;
      if n > limit then
        Format.printf "... (%d more; raise -n or use --format json)@."
          (n - limit)
    | Obs.Export.Json | Obs.Export.Chrome -> (
      let rendered = Obs.Export.render fmt events in
      match out with
      | None -> print_string rendered
      | Some path ->
        let oc = open_out path in
        output_string oc rendered;
        close_out oc;
        Format.eprintf "wrote %d %s events to %s@." (List.length events)
          (Obs.Export.format_name fmt) path)
  in
  let run name backend fmt limit out =
    let apps =
      match name with
      | None -> Ok (Apps.Registry.all ())
      | Some n -> Result.map (fun a -> [ a ]) (find_app n)
    in
    match apps with
    | Error e -> exits_with_error e
    | Ok apps ->
      if out <> None && List.length apps > 1 then
        exits_with_error "--out requires naming a single workload";
      List.iter (trace_app backend fmt limit out) apps
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a workload with cycle-accurate monitor telemetry and export \
          it: per-phase switch spans, region swaps, PPB emulations, and \
          denials, as human text, JSON, or a Chrome/Perfetto trace")
    Term.(const run $ app_opt $ backend_arg $ format $ limit $ out)

(* --------------------------------------------------------------- profile *)

let profile_cmd =
  let app_opt =
    let doc = "Workload to profile (default: every bundled workload)." in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"APP" ~doc)
  in
  let profile_app (app : Apps.App.t) =
    let c = P.ctx app in
    let t0 = Unix.gettimeofday () in
    P.warm c;
    let total = Unix.gettimeofday () -. t0 in
    Format.printf "== %s ==@." app.Apps.App.app_name;
    List.iter
      (fun (stage, dt) ->
        Format.printf "  %-18s %9.2f ms@." stage (dt *. 1000.0))
      (P.timings c);
    Format.printf "  %-18s %9.2f ms@." "total" (total *. 1000.0);
    let p = P.protected_ c in
    Format.printf "  monitor: %a@." Mon.Stats.pp p.P.p_stats
  in
  let run name =
    let apps =
      match name with
      | None -> Ok (Apps.Registry.all ())
      | Some n -> Result.map (fun a -> [ a ]) (find_app n)
    in
    match apps with
    | Error e -> exits_with_error e
    | Ok apps -> List.iter profile_app apps
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Materialize a workload's full artifact pipeline and print the \
          wall-clock cost of every stage (validate, analyses, partition, \
          image, reference runs, ACES)")
    Term.(const run $ app_opt)

(* -------------------------------------------------------------- syncsets *)

let syncsets_cmd =
  let app_opt =
    let doc = "Workload to report (default: every bundled workload)." in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"APP" ~doc)
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the report as JSON.")
  in
  let module Ss = Opec_analysis.Syncset in
  let list_bytes s =
    C.Config.syncset_header_bytes
    + (Ss.SS.cardinal s * C.Config.syncset_entry_bytes)
  in
  let report_app ~json (app : Apps.App.t) =
    let c = P.ctx app in
    let image = P.image c in
    let ss = image.C.Image.syncsets in
    let pair_rows =
      List.map
        (fun (src, dst) ->
          let r = Ss.resume_set ss ~src ~dst in
          (src, dst, Ss.SS.cardinal r, list_bytes r))
        (Ss.pairs ss)
    in
    let op_rows =
      List.map
        (fun opn ->
          let out = Ss.out_set ss opn and enter = Ss.enter_set ss opn in
          ( opn,
            Ss.SS.cardinal (Ss.slots_of ss opn),
            Ss.SS.cardinal out,
            Ss.SS.cardinal enter,
            Ss.SS.cardinal (Ss.relevant_set ss opn),
            Ss.SS.cardinal (Ss.ro_set ss opn),
            Ss.SS.cardinal (Ss.unobserved_set ss opn),
            list_bytes out + list_bytes enter ))
        (Ss.ops ss)
    in
    if json then begin
      let quote s = Printf.sprintf "%S" s in
      let ops_json =
        List.map
          (fun (opn, slots, out, enter, relevant, ro, dead, bytes) ->
            Printf.sprintf
              {|{"op":%s,"slots":%d,"out":%d,"enter":%d,"relevant":%d,"ro":%d,"dead":%d,"bytes":%d}|}
              (quote opn) slots out enter relevant ro dead bytes)
          op_rows
      in
      let pairs_json =
        List.map
          (fun (src, dst, slots, bytes) ->
            Printf.sprintf {|{"src":%s,"dst":%s,"slots":%d,"bytes":%d}|}
              (quote src) (quote dst) slots bytes)
          pair_rows
      in
      Format.printf
        {|{"app":%s,"conservative_resume":%b,"escaped":[%s],"ops":[%s],"pairs":[%s],"schedule_bytes":%d}@.|}
        (quote app.Apps.App.app_name)
        (Ss.conservative_resume ss)
        (String.concat "," (List.map quote (Ss.SS.elements (Ss.escaped ss))))
        (String.concat "," ops_json)
        (String.concat "," pairs_json)
        image.C.Image.syncset_bytes
    end
    else begin
      Format.printf "== %s ==@." app.Apps.App.app_name;
      Format.printf "  resume scheduling: %s@."
        (if Ss.conservative_resume ss then
           "conservative (raw SVC yields: resume = enter)"
         else Printf.sprintf "precise (%d pairs)" (List.length pair_rows));
      (match Ss.SS.elements (Ss.escaped ss) with
      | [] -> Format.printf "  escaped globals: none@."
      | gs ->
        Format.printf "  escaped globals: %s@." (String.concat ", " gs));
      Format.printf "  %-16s %5s %5s %6s %9s %4s %5s %6s@." "operation"
        "slots" "out" "enter" "relevant" "ro" "dead" "bytes";
      List.iter
        (fun (opn, slots, out, enter, relevant, ro, dead, bytes) ->
          Format.printf "  %-16s %5d %5d %6d %9d %4d %5d %6d@." opn slots out
            enter relevant ro dead bytes)
        op_rows;
      List.iter
        (fun (src, dst, slots, bytes) ->
          Format.printf "  resume %s -> %s: %d slot%s, %d B@." src dst slots
            (if slots = 1 then "" else "s")
            bytes)
        pair_rows;
      Format.printf "  schedule: %d B of flash@." image.C.Image.syncset_bytes
    end
  in
  let run name json =
    let apps =
      match name with
      | None -> Ok (Apps.Registry.all ())
      | Some n -> Result.map (fun a -> [ a ]) (find_app n)
    in
    match apps with
    | Error e -> exits_with_error e
    | Ok apps -> List.iter (report_app ~json) apps
  in
  Cmd.v
    (Cmd.info "syncsets"
       ~doc:
         "Report the static sync schedule: per-operation out/enter set \
          sizes, read-only master mappings, dead (never-observed) \
          publishes, per-pair resume sets, escaped globals, and the \
          schedule's flash footprint")
    Term.(const run $ app_opt $ json)

(* ------------------------------------------------------------------ lint *)

let lint_cmd =
  let app_opt =
    let doc = "Workload to lint (default: every bundled workload)." in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"APP" ~doc)
  in
  let all =
    Arg.(
      value & flag
      & info [ "all" ]
          ~doc:
            "Also run the dynamic trace oracle (L007) and show \
             info-severity diagnostics.")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit diagnostics as JSON.")
  in
  let lint_app ~all ~json (app : Apps.App.t) =
    let c = P.ctx app in
    let image = P.image c in
    (* the oracle walks the pipeline's memoized traced baseline: no
       private replay, and the compile is shared with every other
       command in this process *)
    let source =
      if all then begin
        let b = P.baseline_traced c in
        Some
          (Opec_lint.Lint.Recorded
             { Opec_lint.Lint.map =
                 b.P.b_run.Mon.Runner.b_layout.Opec_exec.Vanilla_layout.map;
               events = b.P.b_events;
               failure = b.P.b_err })
      end
      else None
    in
    let diags = Opec_lint.Lint.run ~dynamic:all ?source image in
    if json then
      Format.printf {|{"app":"%s","diagnostics":%s}@.|} app.Apps.App.app_name
        (Opec_lint.Lint.to_json diags)
    else begin
      Format.printf "== %s ==@." app.Apps.App.app_name;
      Opec_lint.Lint.render ~all Format.std_formatter diags
    end;
    Opec_lint.Lint.errors diags = []
  in
  let run name all json =
    let apps =
      match name with
      | None -> Ok (Apps.Registry.all ())
      | Some n -> Result.map (fun a -> [ a ]) (find_app n)
    in
    match apps with
    | Error e -> exits_with_error e
    | Ok apps ->
      let ok =
        List.fold_left (fun ok app -> lint_app ~all ~json app && ok) true apps
      in
      if not ok then exit 1
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Verify a workload's derived policy: static checks over the \
          compiled image, plus (with --all) a dynamic trace oracle")
    Term.(const run $ app_opt $ all $ json)

(* ---------------------------------------------------------------- attack *)

let attack_cmd =
  let app_opt =
    let doc = "Workload to attack (default: every bundled workload)." in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"APP" ~doc)
  in
  let all =
    Arg.(
      value & flag
      & info [ "all" ]
          ~doc:
            "Attack every bundled workload (the default when APP is \
             omitted).")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the matrix as JSON.")
  in
  let details =
    Arg.(
      value & flag
      & info [ "details" ]
          ~doc:"Show each cell's injection rationale and classification.")
  in
  let domains =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "domains" ] ~docv:"N"
          ~doc:
            "Worker domains for the campaign fan-out (default: pool \
             size).  The pool is shared with every other parallel \
             command, so nested parallel work runs inline instead of \
             oversubscribing.")
  in
  let run name all json details domains backend =
    (* reduced-size workload variants: same code and policy, fewer
       rounds, so the 30-cell matrix per app stays quick *)
    let small = Apps.Registry.all_small () in
    let apps =
      match (if all then None else name) with
      | None -> Ok small
      | Some n -> (
        match Apps.Registry.find n small with
        | Some a -> Ok [ a ]
        | None ->
          Error (Printf.sprintf "unknown application %S; try `opec list'" n))
    in
    match apps with
    | Error e -> exits_with_error e
    | Ok apps ->
      let ms = Opec_attack.Campaign.run_all ?domains ~backend apps in
      if json then print_endline (Opec_attack.Report.to_json ms)
      else begin
        List.iter
          (fun m ->
            print_endline (Opec_attack.Report.render ~details m);
            print_newline ())
          ms;
        if List.length ms > 1 then
          print_endline (Opec_attack.Report.summary ms)
      end;
      (* the security-regression gate: any escape under OPEC fails *)
      let escaped =
        List.fold_left
          (fun acc (m : Opec_attack.Campaign.matrix) ->
            List.fold_left
              (fun acc (c : Opec_attack.Campaign.cell) ->
                Format.eprintf "OPEC ESCAPE in %s/%s: %s@."
                  m.Opec_attack.Campaign.app
                  (Opec_attack.Primitive.name
                     c.Opec_attack.Campaign.injection
                       .Opec_attack.Planner.primitive)
                  c.Opec_attack.Campaign.detail;
                acc + 1)
              acc
              (Opec_attack.Campaign.opec_escapes m))
          0 ms
      in
      if escaped > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "attack"
       ~doc:
         "Run the attack-injection campaign: every planner-derived \
          primitive against every defense (vanilla, ACES1-3, OPEC), \
          with outcomes classified as blocked / contained / escaped / \
          crashed.  Exits nonzero if any attack escapes OPEC.")
    Term.(const run $ app_opt $ all $ json $ details $ domains $ backend_arg)

(* ----------------------------------------------------- compare-backends *)

let compare_backends_cmd =
  let module Atk = Opec_attack in
  let app_opt =
    let doc = "Workload to study (default: every bundled workload)." in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"APP" ~doc)
  in
  let backends =
    Arg.(
      value
      & opt (list backend_conv) M.Backend.all_kinds
      & info [ "backends" ] ~docv:"B1,B2,..."
          ~doc:
            "Comma-separated backends to compare (default: \
             $(b,mpu,pmp,cheri,poe)).")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the study as JSON.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:"Also write the JSON study to $(docv).")
  in
  let domains =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "domains" ] ~docv:"N"
          ~doc:"Worker domains per backend sweep (default: pool size).")
  in
  let run name backends json out domains =
    let small = Apps.Registry.all_small () in
    let apps =
      match name with
      | None -> Ok small
      | Some n -> (
        match Apps.Registry.find n small with
        | Some a -> Ok [ a ]
        | None ->
          Error (Printf.sprintf "unknown application %S; try `opec list'" n))
    in
    (* keep first occurrence of each backend, in the order given *)
    let backends =
      List.fold_left
        (fun acc k -> if List.mem k acc then acc else acc @ [ k ])
        [] backends
    in
    match apps with
    | Error e -> exits_with_error e
    | Ok apps ->
      if backends = [] then exits_with_error "empty backend list";
      let t = Atk.Backend_study.run ~backends ?domains apps in
      (match out with
      | None -> ()
      | Some path ->
        let oc = open_out path in
        output_string oc (Atk.Backend_study.to_json t);
        close_out oc;
        Format.eprintf "wrote %s@." path);
      if json then print_endline (Atk.Backend_study.to_json t)
      else print_endline (Atk.Backend_study.render t);
      (* same security gate as `opec attack`, per backend *)
      let esc = Atk.Backend_study.escapes t in
      List.iter
        (fun (app, k, (c : Atk.Campaign.cell)) ->
          Format.eprintf "ESCAPE under %s in %s/%s: %s@."
            (M.Backend.kind_name k) app
            (Atk.Primitive.name
               c.Atk.Campaign.injection.Atk.Planner.primitive)
            c.Atk.Campaign.detail)
        esc;
      if esc <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "compare-backends"
       ~doc:
         "Cross-backend trade-off study: run the containment campaign \
          and the cycle-accurate overhead breakdown under every \
          requested enforcement backend (MPU, PMP, CHERI, POE) and \
          render the app\195\151primitive\195\151backend containment \
          matrix next to the per-backend overhead and image footprint.  \
          Exits nonzero if any attack escapes any backend.")
    Term.(const run $ app_opt $ backends $ json $ out $ domains)

(* ------------------------------------------------------------------ fuzz *)

let fuzz_cmd =
  let module F = Opec_fuzz in
  let seeds_arg =
    Arg.(
      value
      & opt seed_range_conv (0, 50)
      & info [ "seeds" ] ~docv:"A..B"
          ~doc:"Inclusive seed range to sweep (default 0..50).")
  in
  let size =
    Arg.(
      value & opt int 2
      & info [ "size" ]
          ~doc:"Generator size: scales globals, entries, and body length.")
  in
  let properties =
    Arg.(
      value & opt_all string []
      & info [ "property"; "p" ] ~docv:"P"
          ~doc:"Check only this oracle property (repeatable; default all).")
  in
  let replay =
    Arg.(
      value
      & opt (some file) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:"Re-judge a saved reproducer instead of sweeping.")
  in
  let out_dir =
    Arg.(
      value & opt string "_fuzz"
      & info [ "out" ] ~docv:"DIR" ~doc:"Where to write reproducers.")
  in
  let no_shrink =
    Arg.(
      value & flag
      & info [ "no-shrink" ] ~doc:"Skip delta-debugging of failures.")
  in
  let domains =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "domains" ] ~docv:"N"
          ~doc:"Worker domains for the sweep (default: pool size).")
  in
  let corpus =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:
            "Coverage-guided mode: replay the corpus in $(docv), sweep \
             the seed range feeding the coverage map, then mutate \
             corpus inputs, persisting every input that grows the map \
             back into $(docv).")
  in
  let budget =
    Arg.(
      value
      & opt (some int) None
      & info [ "budget" ] ~docv:"N"
          ~doc:
            "Mutation budget for $(b,--corpus) mode (default: the seed \
             range width).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit the report as one JSON object on stdout; diagnostics \
             (stale corpus entries) go to stderr.")
  in
  let run (lo, hi) size properties replay out_dir no_shrink domains corpus
      budget json =
    match replay with
    | Some path -> (
      match F.Runner.replay path with
      | [] -> Format.printf "%s: failure no longer reproduces@." path
      | fails ->
        List.iter
          (fun (p, d) -> Format.printf "%s: %s — %s@." path p d)
          fails;
        exit 1)
    | None -> (
      let properties = if properties = [] then None else Some properties in
      match corpus with
      | Some corpus_dir -> (
        match
          F.Runner.run_guided ~size ?properties ~out_dir
            ~shrink:(not no_shrink) ?budget ~corpus_dir ~lo ~hi ()
        with
        | exception Invalid_argument msg -> exits_with_error msg
        | report ->
          if json then begin
            (* stdout carries exactly one JSON object; human-facing
               warnings about stale corpus files go to stderr *)
            List.iter
              (fun (path, reason) ->
                Format.eprintf "opec fuzz: skipped stale %s: %s@." path
                  reason)
              report.F.Runner.g_skipped;
            print_endline (F.Runner.guided_report_json report)
          end
          else Format.printf "%a@." F.Runner.pp_guided_report report;
          if report.F.Runner.g_failures <> [] then exit 1)
      | None -> (
        match
          F.Runner.run ?domains ~size ?properties ~out_dir
            ~shrink:(not no_shrink) ~lo ~hi ()
        with
        | exception Invalid_argument msg -> exits_with_error msg
        | report ->
          if json then print_endline (F.Runner.report_json report)
          else Format.printf "%a@." F.Runner.pp_report report;
          if report.F.Runner.r_failures <> [] then exit 1))
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Generate random well-formed firmware from seeds and check \
          differential properties: lint cleanliness, trace-oracle \
          inclusion, baseline/protected transparency, engine agreement, \
          and attack containment.  Failures are shrunk and written as \
          replayable reproducers; exits nonzero if any seed fails.")
    Term.(
      const run $ seeds_arg $ size $ properties $ replay $ out_dir
      $ no_shrink $ domains $ corpus $ budget $ json)

(* ----------------------------------------------------------------- fleet *)

let fleet_cmd =
  let module Fl = Opec_fleet in
  let apps =
    Arg.(
      value & opt string "all"
      & info [ "apps" ] ~docv:"NAMES"
          ~doc:
            "Registry workloads to evaluate: $(b,all) (default), \
             $(b,none), or a comma-separated name list.")
  in
  let seeds =
    Arg.(
      value
      & opt (some seed_range_conv) None
      & info [ "seeds" ] ~docv:"A..B"
          ~doc:
            "Also evaluate fuzz-generated firmware for this inclusive \
             seed range (artifacts of each generated image are evicted \
             when its last task finishes).")
  in
  let size =
    Arg.(
      value & opt int 2
      & info [ "size" ]
          ~doc:"Generator size for the seed images (as in `opec fuzz').")
  in
  let tasks =
    Arg.(
      value & opt string "compile,lint,attack,trace,fuzz"
      & info [ "tasks" ] ~docv:"T1,T2,..."
          ~doc:
            "Evaluation tasks per image: any of $(b,compile), $(b,lint), \
             $(b,attack), $(b,trace), $(b,fuzz).")
  in
  let backends =
    Arg.(
      value & opt string "mpu"
      & info [ "backends" ] ~docv:"B1,B2,..."
          ~doc:
            "Enforcement backends to mix in this job (any of $(b,mpu), \
             $(b,pmp), $(b,cheri), $(b,poe)); every image\195\151task \
             unit runs once per backend.")
  in
  let domains =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "domains" ] ~docv:"N"
          ~doc:"Scheduler participants (default: pool size).")
  in
  let json_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"OUT"
          ~doc:
            "Write the consolidated report as JSON to $(docv) ($(b,-) \
             for stdout).  The report is byte-identical across -j.")
  in
  let journal_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"OUT"
          ~doc:
            "Write the job journal (the scheduler's event log: enqueued \
             / stolen / started / finished / failed, with domain ids \
             and timestamps) as JSON to $(docv).")
  in
  let quiet =
    Arg.(
      value & flag
      & info [ "quiet"; "q" ] ~doc:"Suppress the streaming progress lines.")
  in
  let run apps seeds size tasks backends domains json_out journal_out quiet =
    let spec_apps =
      match String.lowercase_ascii (String.trim apps) with
      | "all" -> Fl.Spec.All_apps
      | "none" -> Fl.Spec.No_apps
      | _ ->
        Fl.Spec.Named
          (String.split_on_char ',' apps |> List.map String.trim
          |> List.filter (fun s -> s <> ""))
    in
    let spec =
      match
        (Fl.Spec.tasks_of_string tasks, Fl.Spec.backends_of_string backends)
      with
      | Error e, _ | _, Error e -> Error e
      | Ok tasks, Ok backends ->
        Ok
          { Fl.Spec.apps = spec_apps; seeds; seed_size = size; tasks; backends }
    in
    match spec with
    | Error e -> exits_with_error e
    | Ok spec -> (
      let progress s = Format.eprintf "%s@." s in
      let progress = if quiet then fun _ -> () else progress in
      match Fl.Fleet.run ?domains ~progress spec with
      | Error e -> exits_with_error e
      | Ok o ->
        print_string (Fl.Fleet.report_text o);
        Format.eprintf "fleet: %d units on %d domains in %.2fs@."
          (List.length o.Fl.Fleet.o_units) o.Fl.Fleet.o_domains
          o.Fl.Fleet.o_wall_s;
        (match json_out with
        | None -> ()
        | Some "-" -> print_string (Fl.Fleet.report_json o)
        | Some path -> Fl.Report.save path (Fl.Fleet.report_json o));
        (match journal_out with
        | None -> ()
        | Some path -> Fl.Journal.save path o.Fl.Fleet.o_journal);
        List.iter
          (fun (u, e) -> Format.eprintf "FAILED %s: %s@." u e)
          o.Fl.Fleet.o_failures;
        if o.Fl.Fleet.o_failures <> [] then exit 1;
        (* same security gate as `opec attack`: escapes fail the job *)
        if o.Fl.Fleet.o_agg.Fl.Agg.g_opec_escapes > 0 then exit 1)
  in
  Cmd.v
    (Cmd.info "fleet"
       ~doc:
         "Fleet-scale evaluation: expand registry workloads and \
          fuzz-generated seed images into image×task units, run them on \
          the work-stealing domain pool against the shared compile-once \
          artifact store, and emit one consolidated deterministic \
          report (plus an exportable job journal).  Exits nonzero on \
          any task failure or OPEC escape.")
    Term.(
      const run $ apps $ seeds $ size $ tasks $ backends $ domains $ json_out
      $ journal_out $ quiet)

(* ------------------------------------------------------------------ load *)

let load_cmd =
  let module L = Opec_load in
  let scenario =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"SCENARIO"
          ~doc:
            "Scenario to drive (default: all): request-storm, \
             sensor-burst, interrupt-preempt, or tcp-echo-slice.")
  in
  let events =
    Arg.(
      value & opt int 100_000
      & info [ "events" ] ~docv:"N"
          ~doc:
            "Event target per scenario run (the tcp-echo-slice drives \
             a fixed 500-frame slice regardless).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit one JSON object per line instead of text.")
  in
  let run scenario backend events json =
    let kinds =
      match scenario with
      | None -> Ok L.Scenario.all
      | Some s -> (
        match L.Scenario.of_name s with
        | Some k -> Ok [ k ]
        | None ->
          Error
            (Printf.sprintf "unknown scenario %S (known: %s)" s
               (String.concat ", " (List.map L.Scenario.name L.Scenario.all))))
    in
    match kinds with
    | Error msg -> exits_with_error msg
    | Ok kinds ->
      let results =
        List.map (fun k -> L.Scenario.run ~backend ~target_events:events k)
          kinds
      in
      List.iter
        (fun r ->
          if json then print_endline (L.Scenario.result_json r)
          else Format.printf "%a@.@." L.Scenario.pp_result r)
        results;
      if
        List.exists
          (fun r -> match r.L.Scenario.r_check with Ok () -> false | Error _ -> true)
          results
      then exit 1
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:
         "Traffic-driven load scenarios: server-shaped drivers \
          (request/response storms, sensor bursts, preemptive thread \
          traffic, and a TCP-Echo slice) pushing sustained event \
          streams through the protected image and reporting the \
          operation-switch latency tail (mean, p50, p99, p999) under \
          the selected enforcement backend.  Exits nonzero if any \
          scenario's end-to-end output check fails.")
    Term.(const run $ scenario $ backend_arg $ events $ json)

let () =
  let info =
    Cmd.info "opec" ~version:"1.0.0"
      ~doc:"Operation-based security isolation for bare-metal embedded systems"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; policy_cmd; run_cmd; compare_cmd; aces_cmd; trace_cmd;
            profile_cmd; syncsets_cmd; lint_cmd; attack_cmd;
            compare_backends_cmd; fuzz_cmd; fleet_cmd; load_cmd ]))
